//! Multi-rack topology bench (PR 9): paper-scale Clos scenarios.
//!
//! Four sections, all on compiled spine/leaf topologies:
//!
//! 1. **All-to-all at §5.2 scale** — 42 hosts (7 racks x 6), 3 spines:
//!    every host sends to one peer in every other rack, twice with the
//!    same seed; the two runs must be identical (deterministic ECMP +
//!    seeded simulation), and the traffic must spread over all spines.
//! 2. **N:1 incast sweep** — a closed-loop [`ClientPool`] fans 2/6/12
//!    cross-rack clients into one server over both facade backends;
//!    reports tail latency and the destination-leaf drop attribution
//!    (the incast signature: drops concentrate at the victim's ToR).
//! 3. **Oversubscription** — a 12:4 cross-rack pattern (every client
//!    rack hammering rack 0's four servers) on a non-blocking (1:1) vs
//!    4:1-oversubscribed fabric, kernel TCP vs Pony. N:1 to a single
//!    server cannot expose oversubscription — at 4:1 the victim rack's
//!    trunk aggregate exactly equals one host's NIC rate, so the
//!    server link binds first either way. With four servers the rack
//!    wants 4 hosts' worth of ingress but the 4:1 trunks carry one:
//!    the trunk tier becomes the bottleneck and the tails move.
//! 4. **Diurnal fleet** — the PR-8 mixed fleet (DAG + KV + streamer)
//!    placed across a 2-rack Clos with the DAG under a [`DiurnalLoad`]
//!    arrival curve, run twice to pin determinism.
//!
//! Writes `BENCH_pr9.json` (path overridable as argv[1]) and prints
//! tables; the all-to-all run also carries a flight recorder and is
//! exported as a Chrome-trace timeline (`TIMELINE_pr9.json`, argv[2])
//! with per-core CPU lanes and round markers on the virtual-time
//! axis. Run with: `cargo run --release --bin bench_topo`

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use snap_repro::apps::dag::{DagSpec, OpenLoop, ServiceSpec, ServiceTime};
use snap_repro::apps::kv::KvSpec;
use snap_repro::apps::pool::{ClientPool, PoolReport, PoolSpec};
use snap_repro::apps::stream::StreamSpec;
use snap_repro::apps::transport::Backend;
use snap_repro::fleet::{run_mixed_fleet, FleetSpec};
use snap_repro::nic::fabric::SwitchId;
use snap_repro::obs::{FlightRecorder, RecorderConfig, Timeline};
use snap_repro::pony::client::{PonyCommand, PonyCompletion};
use snap_repro::sim::dist::DiurnalLoad;
use snap_repro::sim::stats::Histogram;
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};
use snap_repro::topo::ClosSpec;

const SEED: u64 = 42;

// ---------------------------------------------------------------- §5.2

const A2A_RACKS: u32 = 7;
const A2A_HOSTS_PER_RACK: u32 = 6;
const A2A_SPINES: u32 = 3;
const A2A_ROUNDS: u64 = 3;
const A2A_MSG_BYTES: u64 = 8_000;

#[derive(PartialEq, Debug)]
struct AllToAllResult {
    received: u64,
    expected: u64,
    p50: Nanos,
    p99: Nanos,
    makespan: Nanos,
    trunk_bytes: u64,
    spines_used: u32,
    switch_drops: u64,
}

/// Every host sends `A2A_ROUNDS` messages to one peer in each other
/// rack (rack-shifted by one rack's worth of hosts per step) — the
/// §5.2 all-to-all pattern at 42 hosts.
fn all_to_all() -> (AllToAllResult, FlightRecorder, Vec<Nanos>) {
    let hosts = (A2A_RACKS * A2A_HOSTS_PER_RACK) as usize;
    let mut tb = Testbed::new(TestbedConfig {
        hosts,
        seed: SEED,
        topology: Some(ClosSpec::clos(A2A_RACKS, A2A_HOSTS_PER_RACK, A2A_SPINES)),
        ..TestbedConfig::default()
    });
    // Flight recorder with CPU attribution: sampling is a pure read of
    // modeled state, so the twice-run determinism assert still holds.
    let rec = tb.flight_recorder(RecorderConfig {
        cadence: Nanos::from_micros(100),
        capacity: 2048,
    });
    rec.start(&mut tb.sim);
    let mut clients = Vec::with_capacity(hosts);
    for h in 0..hosts {
        clients.push(tb.pony_app(h, &format!("a2a{h}"), |_| {}));
    }
    // One connection per (src, other-rack peer): src i targets
    // i + k * hosts_per_rack (mod N) — same slot, every other rack.
    let mut conns: Vec<(usize, usize, u64)> = Vec::new();
    for src in 0..hosts {
        for k in 1..A2A_RACKS as usize {
            let dst = (src + k * A2A_HOSTS_PER_RACK as usize) % hosts;
            let conn = tb.connect(src, &format!("a2a{src}"), dst, &format!("a2a{dst}"));
            clients[dst].submit(
                &mut tb.sim,
                PonyCommand::PostRecvBuffers {
                    conn,
                    count: 2 * A2A_ROUNDS as u32,
                },
            );
            conns.push((src, dst, conn));
        }
    }
    let expected = conns.len() as u64 * A2A_ROUNDS;

    let start = tb.sim.now();
    let mut sent_round_at: Vec<Nanos> = Vec::new();
    let mut latency = Histogram::new();
    let mut received = 0u64;
    let collect =
        |tb: &mut Testbed, clients: &mut Vec<snap_repro::pony::PonyClient>,
         latency: &mut Histogram, sent_round_at: &[Nanos], received: &mut u64| {
            let now = tb.sim.now();
            for c in clients.iter_mut() {
                for comp in c.take_completions() {
                    if let PonyCompletion::RecvMsg { msg, .. } = comp {
                        // msg is the per-connection sequence number =
                        // the round it was sent in.
                        if let Some(&t0) = sent_round_at.get(msg as usize) {
                            latency.record_nanos(now.saturating_sub(t0));
                        }
                        *received += 1;
                    }
                }
            }
        };
    for _round in 0..A2A_ROUNDS {
        sent_round_at.push(tb.sim.now());
        for &(src, _, conn) in &conns {
            clients[src].submit(
                &mut tb.sim,
                PonyCommand::Send {
                    conn,
                    stream: 0,
                    len: A2A_MSG_BYTES,
                },
            );
        }
        // Poll finely within the round so latency quantiles resolve
        // below the round length.
        for _ in 0..12 {
            tb.run_us(25);
            collect(&mut tb, &mut clients, &mut latency, &sent_round_at, &mut received);
        }
    }
    let deadline = tb.sim.now() + Nanos::from_millis(100);
    while received < expected && tb.sim.now() < deadline {
        tb.run_us(100);
        collect(&mut tb, &mut clients, &mut latency, &sent_round_at, &mut received);
    }
    let makespan = tb.sim.now().saturating_sub(start);
    rec.stop();
    rec.sample_once(&mut tb.sim);

    let mut per_spine: HashMap<u32, u64> = HashMap::new();
    let mut trunk_bytes = 0u64;
    for ((from, _to), s) in tb.fabric.trunks() {
        trunk_bytes += s.bytes;
        if let SwitchId::Spine(sp) = from {
            *per_spine.entry(sp).or_insert(0) += s.forwarded;
        }
    }
    let result = AllToAllResult {
        received,
        expected,
        p50: Nanos(latency.median()),
        p99: Nanos(latency.p99()),
        makespan,
        trunk_bytes,
        spines_used: per_spine.values().filter(|&&f| f > 0).count() as u32,
        switch_drops: tb.fabric.stats().switch_drops,
    };
    (result, rec, sent_round_at)
}

// -------------------------------------------------------------- incast

const INCAST_SPEC: (u32, u32, u32) = (4, 4, 2); // racks, hosts/rack, spines

struct IncastResult {
    backend: &'static str,
    fan_in: usize,
    report: PoolReport,
    dst_leaf_drops: u64,
    other_switch_drops: u64,
    wall_secs: f64,
}

/// `fan_in` closed-loop clients, one per host spread over the non-server
/// racks, all hammering one server on host 0 (rack 0). Request-heavy
/// (16 KB up, 128 B back): the congestion point is the server's leaf.
fn incast(backend: Backend, fan_in: usize, topology: ClosSpec) -> IncastResult {
    let started = Instant::now();
    let (racks, hpr, _) = INCAST_SPEC;
    let hosts = (racks * hpr) as usize;
    assert!(fan_in <= hosts - hpr as usize, "clients live outside rack 0");
    let mut tb = Testbed::new(TestbedConfig {
        hosts,
        seed: SEED,
        topology: Some(topology),
        ..TestbedConfig::default()
    });
    let server_sh = tb.app(0, "srv", backend);
    let mut pairs = Vec::with_capacity(fan_in);
    for c in 0..fan_in {
        let host = hpr as usize + c; // hosts 4.. are racks 1..
        let name = format!("cli{c}");
        tb.app(host, &name, backend);
        let dial = tb
            .app_connect(host, &name, 0, "srv")
            .expect("facade endpoints wire");
        let accepted = server_sh.listener().accept().expect("server accepts");
        pairs.push((dial, accepted));
    }
    let mut pool = ClientPool::new(
        PoolSpec {
            request_bytes: 16 * 1024,
            reply_bytes: 128,
            window: 4,
            think: Nanos::ZERO,
            service: ServiceTime::Exponential { mean_us: 2.0 },
            requests_per_client: 15,
        },
        pairs,
        SEED,
    );
    let report = pool
        .run(tb.as_pump(), Nanos::from_millis(900))
        .expect("incast completes within budget");

    let mut dst_leaf_drops = 0u64;
    let mut other_switch_drops = 0u64;
    for ((sw, _class), n) in tb.fabric.switch_drop_breakdown() {
        if sw == SwitchId::Leaf(0) {
            dst_leaf_drops += n;
        } else {
            other_switch_drops += n;
        }
    }
    IncastResult {
        backend: backend.label(),
        fan_in,
        report,
        dst_leaf_drops,
        other_switch_drops,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// The oversubscription probe: four echo servers fill rack 0, and
/// twelve closed-loop clients (every host of racks 1-3) each hammer
/// one of them, request-heavy. Aggregate demand into rack 0 is four
/// hosts' worth of bandwidth; at 4:1 the rack's trunk aggregate is
/// one host's worth, so the down-trunks queue. At 1:1 they are never
/// the bottleneck.
fn oversub_mn(backend: Backend, topology: ClosSpec) -> IncastResult {
    let started = Instant::now();
    let (racks, hpr, _) = INCAST_SPEC;
    let hosts = (racks * hpr) as usize;
    let servers = hpr as usize; // rack 0, fully populated
    let fan_in = hosts - servers;
    let mut tb = Testbed::new(TestbedConfig {
        hosts,
        seed: SEED,
        topology: Some(topology),
        ..TestbedConfig::default()
    });
    let server_shs: Vec<_> = (0..servers)
        .map(|s| tb.app(s, &format!("srv{s}"), backend))
        .collect();
    let mut pairs = Vec::with_capacity(fan_in);
    for c in 0..fan_in {
        let host = servers + c;
        let srv = c % servers;
        let name = format!("cli{c}");
        tb.app(host, &name, backend);
        let dial = tb
            .app_connect(host, &name, srv, &format!("srv{srv}"))
            .expect("facade endpoints wire");
        let accepted = server_shs[srv].listener().accept().expect("server accepts");
        pairs.push((dial, accepted));
    }
    let mut pool = ClientPool::new(
        PoolSpec {
            request_bytes: 64 * 1024,
            reply_bytes: 128,
            window: 8,
            think: Nanos::ZERO,
            service: ServiceTime::Exponential { mean_us: 2.0 },
            requests_per_client: 15,
        },
        pairs,
        SEED,
    );
    let report = pool
        .run(tb.as_pump(), Nanos::from_millis(4_000))
        .expect("oversub run completes within budget");

    let mut dst_leaf_drops = 0u64;
    let mut other_switch_drops = 0u64;
    for ((sw, _class), n) in tb.fabric.switch_drop_breakdown() {
        if sw == SwitchId::Leaf(0) {
            dst_leaf_drops += n;
        } else {
            other_switch_drops += n;
        }
    }
    IncastResult {
        backend: backend.label(),
        fan_in,
        report,
        dst_leaf_drops,
        other_switch_drops,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

// ------------------------------------------------------------- diurnal

struct DiurnalResult {
    dag_completed: u64,
    dag_p50: Nanos,
    dag_p99: Nanos,
    kv_verified: u64,
    kv_p99: Nanos,
    stream_records: u64,
    trunk_bytes: u64,
}

/// The mixed fleet placed across a 2-rack Clos: the DAG spans the
/// racks (frontend + leaf in rack 0, both mids in rack 1), the KV pair
/// and the streamer each cross racks, and the DAG's open loop follows
/// a diurnal curve — peak arrivals 60% above the trough.
fn diurnal_fleet() -> DiurnalResult {
    let mut tb = Testbed::new(TestbedConfig {
        hosts: 4,
        seed: SEED,
        topology: Some(ClosSpec::clos(2, 2, 2)),
        ..TestbedConfig::default()
    });
    let dag = DagSpec {
        services: vec![
            ServiceSpec {
                name: "frontend".into(),
                host: 0,
                time: ServiceTime::Constant(Nanos::from_micros(4)),
                concurrency: 16,
                children: vec![1, 2],
            },
            ServiceSpec {
                name: "mid-a".into(),
                host: 2,
                time: ServiceTime::Exponential { mean_us: 12.0 },
                concurrency: 8,
                children: vec![3],
            },
            ServiceSpec {
                name: "mid-b".into(),
                host: 3,
                time: ServiceTime::LogNormal {
                    median_us: 10.0,
                    sigma: 0.7,
                },
                concurrency: 8,
                children: vec![3],
            },
            ServiceSpec {
                name: "leaf".into(),
                host: 1,
                time: ServiceTime::Exponential { mean_us: 6.0 },
                concurrency: 16,
                children: vec![],
            },
        ],
        request_bytes: 512,
        reply_bytes: 256,
    };
    let spec = FleetSpec {
        dag,
        dag_load: OpenLoop::diurnal(
            DiurnalLoad {
                base_rate: 6_000.0,
                swing: 0.6,
                period: Nanos::from_millis(10),
                noise: 0.05,
            },
            60,
        ),
        kv: KvSpec {
            keys: 64,
            zipf_s: 1.1,
            value_bytes: 128,
            lookup: ServiceTime::Exponential { mean_us: 3.0 },
            rate_per_sec: 6_000.0,
            requests: 40,
        },
        kv_hosts: (1, 3),
        stream: StreamSpec {
            record_bytes: 8 * 1024,
            rate_per_sec: 2_000.0,
            records: 25,
        },
        stream_hosts: (2, 0),
        mem_quota: (256 * 1024, 512 * 1024),
        budget: Nanos::from_millis(500),
    };
    let report = run_mixed_fleet(&mut tb, &spec).expect("diurnal fleet completes");
    let trunk_bytes = tb.fabric.trunks().iter().map(|(_, s)| s.bytes).sum();
    DiurnalResult {
        dag_completed: report.dag.results.len() as u64,
        dag_p50: report.dag.p50,
        dag_p99: report.dag.p99,
        kv_verified: report.kv.verified,
        kv_p99: report.kv.p99,
        stream_records: report.stream.records,
        trunk_bytes,
    }
}

// ---------------------------------------------------------------- main

fn incast_json(r: &IncastResult) -> String {
    format!(
        concat!(
            "{{\"backend\": \"{}\", \"fan_in\": {}, \"completed\": {}, ",
            "\"p50_ns\": {}, \"p99_ns\": {}, \"throughput_rps\": {:.0}, ",
            "\"dst_leaf_drops\": {}, \"other_switch_drops\": {}, \"wall_secs\": {:.4}}}"
        ),
        r.backend,
        r.fan_in,
        r.report.completed,
        r.report.p50.as_nanos(),
        r.report.p99.as_nanos(),
        r.report.throughput_rps(),
        r.dst_leaf_drops,
        r.other_switch_drops,
        r.wall_secs,
    )
}

fn incast_row(r: &IncastResult) {
    println!(
        "{:<6} {:>6} {:>9} {:>11} {:>11} {:>12.0} {:>10} {:>10}",
        r.backend,
        r.fan_in,
        r.report.completed,
        r.report.p50.as_nanos(),
        r.report.p99.as_nanos(),
        r.report.throughput_rps(),
        r.dst_leaf_drops,
        r.other_switch_drops,
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr9.json".to_string());

    snap_bench::header("Multi-rack Clos fabric (PR 9)");

    // 1. Paper-scale all-to-all, twice: determinism is load-bearing.
    println!(
        "\n[1/4] all-to-all: {} hosts ({} racks x {}, {} spines), {} rounds x {} conns",
        A2A_RACKS * A2A_HOSTS_PER_RACK,
        A2A_RACKS,
        A2A_HOSTS_PER_RACK,
        A2A_SPINES,
        A2A_ROUNDS,
        (A2A_RACKS * A2A_HOSTS_PER_RACK) * (A2A_RACKS - 1),
    );
    let a2a_started = Instant::now();
    let (a2a, a2a_rec, a2a_rounds) = all_to_all();
    let (again, _, _) = all_to_all();
    assert_eq!(a2a, again, "42-host all-to-all must be deterministic");
    let a2a_wall = a2a_started.elapsed().as_secs_f64();
    assert_eq!(a2a.received, a2a.expected, "every message delivered");
    assert_eq!(a2a.spines_used, A2A_SPINES, "ECMP spread over every spine");
    println!(
        "    delivered {}/{} msgs  p50 {} ns  p99 {} ns  makespan {} us  trunk {} MB  spines {}  (x2 runs, identical, {:.1}s)",
        a2a.received,
        a2a.expected,
        a2a.p50.as_nanos(),
        a2a.p99.as_nanos(),
        a2a.makespan.as_micros(),
        a2a.trunk_bytes / 1_000_000,
        a2a.spines_used,
        a2a_wall,
    );

    // The all-to-all run as a Chrome-trace timeline: per-core CPU
    // lanes for a host in the first and last rack, with each round's
    // send burst as an instant on the same virtual-time axis.
    let timeline_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "TIMELINE_pr9.json".to_string());
    let mut tl = Timeline::new();
    tl.add_series_under(&a2a_rec, "cpu.h0.");
    tl.add_series_under(
        &a2a_rec,
        &format!("cpu.h{}.", (A2A_RACKS - 1) * A2A_HOSTS_PER_RACK),
    );
    for (round, at) in a2a_rounds.iter().enumerate() {
        tl.add_instant(*at, &format!("round {round} send burst"));
    }
    std::fs::write(&timeline_path, tl.to_json()).expect("write timeline json");
    println!(
        "    wrote {timeline_path}: {} events over {} recorder ticks",
        tl.len(),
        a2a_rec.ticks()
    );

    // 2. Incast sweep over both backends.
    println!(
        "\n[2/4] N:1 incast on a {}x{} Clos ({} spines), 16 KB requests, closed loop (window 4)",
        INCAST_SPEC.0, INCAST_SPEC.1, INCAST_SPEC.2
    );
    println!(
        "{:<6} {:>6} {:>9} {:>11} {:>11} {:>12} {:>10} {:>10}",
        "stack", "fan_in", "completed", "p50_ns", "p99_ns", "rps", "leaf0_drop", "other_drop"
    );
    let mut incasts = Vec::new();
    for &backend in &[Backend::Tcp, Backend::Pony] {
        for &fan_in in &[2usize, 6, 12] {
            let (racks, hpr, spines) = INCAST_SPEC;
            let r = incast(backend, fan_in, ClosSpec::clos(racks, hpr, spines));
            incast_row(&r);
            incasts.push(r);
        }
    }

    // 3. Oversubscription: 12 clients -> 4 servers (all of rack 0),
    // on 1:1 vs 4:1 trunks.
    println!("\n[3/4] oversubscription: 12:4 cross-rack pool, non-blocking (1:1) vs 4:1 trunks");
    println!(
        "{:<6} {:>6} {:>9} {:>11} {:>11} {:>12} {:>10} {:>10}",
        "stack", "ratio", "completed", "p50_ns", "p99_ns", "rps", "leaf0_drop", "other_drop"
    );
    let mut oversub = Vec::new();
    for &backend in &[Backend::Tcp, Backend::Pony] {
        for &ratio in &[1.0f64, 4.0] {
            let (racks, hpr, spines) = INCAST_SPEC;
            let spec = ClosSpec::clos(racks, hpr, spines).with_oversubscription(ratio, 50.0);
            let r = oversub_mn(backend, spec);
            println!(
                "{:<6} {:>6} {:>9} {:>11} {:>11} {:>12.0} {:>10} {:>10}",
                r.backend,
                ratio,
                r.report.completed,
                r.report.p50.as_nanos(),
                r.report.p99.as_nanos(),
                r.report.throughput_rps(),
                r.dst_leaf_drops,
                r.other_switch_drops,
            );
            oversub.push((ratio, r));
        }
    }

    // 4. Diurnal mixed fleet across racks, twice (determinism).
    println!("\n[4/4] diurnal mixed fleet on a 2-rack Clos");
    let d = diurnal_fleet();
    let d2 = diurnal_fleet();
    assert_eq!(
        (d.dag_p50, d.dag_p99, d.kv_p99),
        (d2.dag_p50, d2.dag_p99, d2.kv_p99),
        "diurnal fleet must be deterministic"
    );
    assert!(d.trunk_bytes > 0, "fleet traffic crossed the spine layer");
    println!(
        "    dag {}/60 (p50 {} ns, p99 {} ns)  kv {}/40 (p99 {} ns)  stream {}/25  trunk {} KB",
        d.dag_completed,
        d.dag_p50.as_nanos(),
        d.dag_p99.as_nanos(),
        d.kv_verified,
        d.kv_p99.as_nanos(),
        d.stream_records,
        d.trunk_bytes / 1_000,
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"topo_clos\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"all_to_all\": {{\"hosts\": {}, \"racks\": {}, \"spines\": {}, \"delivered\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"makespan_us\": {}, \"trunk_bytes\": {}, \"spines_used\": {}, \"switch_drops\": {}, \"deterministic\": true}},",
        A2A_RACKS * A2A_HOSTS_PER_RACK,
        A2A_RACKS,
        A2A_SPINES,
        a2a.received,
        a2a.p50.as_nanos(),
        a2a.p99.as_nanos(),
        a2a.makespan.as_micros(),
        a2a.trunk_bytes,
        a2a.spines_used,
        a2a.switch_drops,
    );
    let _ = writeln!(
        json,
        "  \"incast\": [{}],",
        incasts.iter().map(incast_json).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(
        json,
        "  \"oversubscription\": [{}],",
        oversub
            .iter()
            .map(|(ratio, r)| format!("{{\"ratio\": {ratio}, \"run\": {}}}", incast_json(r)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"diurnal_fleet\": {{\"dag_completed\": {}, \"dag_p50_ns\": {}, \"dag_p99_ns\": {}, \"kv_verified\": {}, \"kv_p99_ns\": {}, \"stream_records\": {}, \"trunk_bytes\": {}, \"deterministic\": true}}",
        d.dag_completed,
        d.dag_p50.as_nanos(),
        d.dag_p99.as_nanos(),
        d.kv_verified,
        d.kv_p99.as_nanos(),
        d.stream_records,
        d.trunk_bytes,
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");
}
