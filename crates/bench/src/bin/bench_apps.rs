//! Application-workload bench (PR 8): the same microservice DAG over
//! kernel TCP vs Pony.
//!
//! One declarative [`DagSpec`] — a fan-out/fan-in diamond with
//! heavy-tailed service times under open-loop Poisson load — runs
//! unmodified over both facade backends. The bench reports end-to-end
//! p50/p99 per backend plus the critical-path breakdown (queue wait,
//! handler service, wire+stack transport) both from the per-request
//! accounting (which telescopes exactly to the measured latency) and
//! from the rack's trace recorder (the `app_*` stages every request
//! stamps while tracing at 100%).
//!
//! Deterministic: each backend runs twice with the same seed and the
//! virtual-time results are asserted identical; the fastest wall-clock
//! rep is reported. Writes `BENCH_pr8.json` (path overridable as
//! argv[1]) and prints a table.
//!
//! Run with: `cargo run --release --bin bench_apps`

use std::fmt::Write as _;
use std::time::Instant;

use snap_repro::apps::dag::{DagSpec, OpenLoop, ServiceSpec, ServiceTime};
use snap_repro::apps::transport::Backend;
use snap_repro::sim::trace::{Stage, TRACE_SAMPLE_SCALE};
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};

const SEED: u64 = 42;
const REQUESTS: u64 = 300;
const RATE_PER_SEC: f64 = 20_000.0;
const REPS: usize = 3;

/// The swept DAG: a frontend fans out to two mid tiers on the remote
/// host, both feed a shared leaf back on the frontend's host — two
/// network hops on every path, fan-in at the leaf and at the root.
fn dag_spec() -> DagSpec {
    DagSpec {
        services: vec![
            ServiceSpec {
                name: "frontend".into(),
                host: 0,
                time: ServiceTime::Constant(Nanos::from_micros(4)),
                concurrency: 16,
                children: vec![1, 2],
            },
            ServiceSpec {
                name: "mid-a".into(),
                host: 1,
                time: ServiceTime::Exponential { mean_us: 12.0 },
                concurrency: 8,
                children: vec![3],
            },
            ServiceSpec {
                name: "mid-b".into(),
                host: 1,
                time: ServiceTime::LogNormal {
                    median_us: 10.0,
                    sigma: 0.7,
                },
                concurrency: 8,
                children: vec![3],
            },
            ServiceSpec {
                name: "leaf".into(),
                host: 0,
                time: ServiceTime::Exponential { mean_us: 6.0 },
                concurrency: 16,
                children: vec![],
            },
        ],
        request_bytes: 512,
        reply_bytes: 256,
    }
}

struct RunResult {
    completed: u64,
    p50: Nanos,
    p99: Nanos,
    /// Mean critical-path components per request (telescope to the
    /// mean end-to-end latency).
    queue_mean: Nanos,
    service_mean: Nanos,
    transport_mean: Nanos,
    /// Trace-recorder view of the app stages: (count, p50, p99) for
    /// app_sched / app_service / app_transport.
    trace_stages: Vec<(String, u64, Nanos, Nanos)>,
    wall_secs: f64,
}

fn run_backend(backend: Backend) -> RunResult {
    let started = Instant::now();
    let mut tb = Testbed::new(TestbedConfig {
        seed: SEED,
        trace_sample_ppm: TRACE_SAMPLE_SCALE,
        ..TestbedConfig::default()
    });
    let spec = dag_spec();
    let mut dag = tb.dag("bench", &spec, backend).expect("spec wires");
    let report = dag
        .run(
            tb.as_pump(),
            OpenLoop::constant(RATE_PER_SEC, REQUESTS),
            Nanos::from_millis(500),
        )
        .expect("all requests complete");

    let n = report.results.len().max(1) as u64;
    let app_stages = [Stage::AppSched, Stage::AppService, Stage::AppTransport];
    let trace_stages = tb
        .recorder
        .as_ref()
        .map(|rec| {
            rec.stage_quantiles()
                .into_iter()
                .filter(|(s, ..)| app_stages.contains(s))
                .map(|(s, count, p50, p99)| (s.label().to_string(), count, p50, p99))
                .collect()
        })
        .unwrap_or_default();
    RunResult {
        completed: report.results.len() as u64,
        p50: report.p50,
        p99: report.p99,
        queue_mean: Nanos(report.queue.as_nanos() / n),
        service_mean: Nanos(report.service.as_nanos() / n),
        transport_mean: Nanos(report.transport.as_nanos() / n),
        trace_stages,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Runs `backend` REPS times; asserts every virtual metric identical
/// across reps (same seed ⇒ same latencies) and keeps the fastest rep.
fn best_of(backend: Backend) -> RunResult {
    let mut best = run_backend(backend);
    for _ in 1..REPS {
        let r = run_backend(backend);
        assert_eq!(r.completed, best.completed, "bench must be deterministic");
        assert_eq!(r.p50, best.p50, "same seed must reproduce p50");
        assert_eq!(r.p99, best.p99, "same seed must reproduce p99");
        assert_eq!(r.transport_mean, best.transport_mean, "breakdown drifted");
        if r.wall_secs < best.wall_secs {
            best = r;
        }
    }
    best
}

fn json_leaf(r: &RunResult) -> String {
    let mut stages = String::new();
    for (i, (label, count, p50, p99)) in r.trace_stages.iter().enumerate() {
        if i > 0 {
            stages.push_str(", ");
        }
        let _ = write!(
            stages,
            "\"{label}\": {{\"count\": {count}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            p50.as_nanos(),
            p99.as_nanos()
        );
    }
    format!(
        concat!(
            "{{\"completed\": {}, \"p50_ns\": {}, \"p99_ns\": {}, ",
            "\"critical_path_mean_ns\": {{\"queue\": {}, \"service\": {}, \"transport\": {}}}, ",
            "\"trace_stages\": {{{}}}, \"wall_secs\": {:.4}}}"
        ),
        r.completed,
        r.p50.as_nanos(),
        r.p99.as_nanos(),
        r.queue_mean.as_nanos(),
        r.service_mean.as_nanos(),
        r.transport_mean.as_nanos(),
        stages,
        r.wall_secs,
    )
}

fn row(name: &str, r: &RunResult) {
    println!(
        "{:<6} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        name,
        r.completed,
        r.p50.as_nanos(),
        r.p99.as_nanos(),
        r.queue_mean.as_nanos(),
        r.service_mean.as_nanos(),
        r.transport_mean.as_nanos(),
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr8.json".to_string());

    snap_bench::header("Application DAG over kernel TCP vs Pony (PR 8)");
    println!(
        "{} requests at {} rps, diamond DAG (frontend -> mid-a/mid-b -> leaf), 2 hosts",
        REQUESTS, RATE_PER_SEC
    );
    println!(
        "{:<6} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "stack", "completed", "p50_ns", "p99_ns", "queue_ns", "svc_ns", "wire_ns"
    );

    let tcp = best_of(Backend::Tcp);
    row("tcp", &tcp);
    let pony = best_of(Backend::Pony);
    row("pony", &pony);

    assert_eq!(tcp.completed, REQUESTS);
    assert_eq!(pony.completed, REQUESTS);
    // The decomposition telescopes: queue + service + transport means
    // account for the full mean latency on both stacks, so the
    // transport column is an apples-to-apples stack comparison.
    println!();
    println!(
        "transport (wire+stack) mean: tcp {} ns vs pony {} ns; \
         service and queue are workload-owned and stack-independent",
        tcp.transport_mean.as_nanos(),
        pony.transport_mean.as_nanos()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"apps_dag\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"requests\": {REQUESTS},");
    let _ = writeln!(json, "  \"rate_per_sec\": {RATE_PER_SEC},");
    let _ = writeln!(json, "  \"tcp\": {},", json_leaf(&tcp));
    let _ = writeln!(json, "  \"pony\": {}", json_leaf(&pony));
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
