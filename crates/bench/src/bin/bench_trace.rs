//! Trace overhead bench: the PR-5 sampling-off-is-free claim.
//!
//! Runs the PR-2/PR-3 streaming workload (4 KB messages, windowed
//! source) four ways — tracing disabled, recorder attached at 0%
//! sampling, 1%, and 100% — and reports wall-clock and modeled
//! throughput for each. Two invariants are asserted, zero-delta (not
//! "within a budget"):
//!
//! * **Off is free.** A recorder attached at rate zero allocates no
//!   contexts and puts no bytes on the wire: every virtual metric
//!   (ops, packets, end time) is identical to the untraced run.
//! * **The rate never steers the model.** At any nonzero rate every op
//!   carries a context (the head verdict only decides retention, and
//!   tail-biased retention needs unsampled ops stamped too), so 1% and
//!   100% produce byte-identical modeled schedules.
//!
//! Nonzero tracing itself is NOT modeled as free: the context rides
//! the Pony wire header (13 bytes + presence flag per packet), a real
//! serialization cost the bench reports as the modeled delta versus
//! the untraced run, alongside the wall-clock overhead of stamping.
//!
//! Deterministic per variant under the fixed seed (asserted across
//! reps). Writes `BENCH_pr5.json` (path overridable as argv[1]) and
//! prints a table.
//!
//! Run with: `cargo run --release --bin bench_trace`

use std::fmt::Write as _;
use std::time::Instant;

use snap_repro::pony::client::{PonyClient, PonyCommand, PonyCompletion};
use snap_repro::pony::engine::PonyEngine;
use snap_repro::sim::trace::{TraceRecorder, TRACE_SAMPLE_SCALE};
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};

const SEED: u64 = 42;
const DURATION_MS: u64 = 50;
/// Wall-clock reps per variant; the fastest rep is reported. Virtual
/// metrics are identical across reps (fixed seed), so the minimum only
/// filters scheduler/cache noise.
const REPS: usize = 7;
const PUMP_US: u64 = 20;
const STREAM_MSG_BYTES: u64 = 4096;
const STREAM_WINDOW: usize = 32;

struct RunResult {
    ops: u64,
    packets: u64,
    virtual_nanos: u64,
    finalized: u64,
    retained: u64,
    wall_secs: f64,
}

impl RunResult {
    fn wall_pkts_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_secs
    }
    fn sim_mops(&self) -> f64 {
        self.ops as f64 / (self.virtual_nanos as f64 / 1e9) / 1e6
    }
}

fn engine_packets(tb: &mut Testbed, host: usize, app: &str) -> u64 {
    let id = tb.hosts[host].module.engine_for(app).expect("app exists");
    tb.hosts[host].group.with_engine(id, |e| {
        e.as_any()
            .downcast_mut::<PonyEngine>()
            .expect("pony engine")
            .stats()
            .tx_packets
    })
}

/// The streaming workload: `None` runs untraced, `Some(ppm)` attaches
/// a rack-wide recorder at that head-sampling rate (0 = attached but
/// sampling off — the hooks run, no contexts are allocated).
fn streaming(sample_ppm: Option<u32>) -> RunResult {
    let mut tb = Testbed::new(TestbedConfig {
        seed: SEED,
        ..TestbedConfig::default()
    });
    if let Some(ppm) = sample_ppm {
        let rec = TraceRecorder::new(SEED, ppm, 4096);
        tb.fabric.set_recorder(rec.clone());
        for host in &mut tb.hosts {
            host.module.set_recorder(rec.clone());
        }
        tb.recorder = Some(rec);
    }
    let mut a = tb.pony_app(0, "src", |_| {});
    let mut b = tb.pony_app(1, "sink", |_| {});
    let conn = tb.connect(0, "src", 1, "sink");
    let deadline = tb.sim.now() + Nanos::from_millis(DURATION_MS);
    let t0 = tb.sim.now();
    let wall = Instant::now();
    let submit_one = |tb: &mut Testbed, a: &mut PonyClient| {
        a.submit(
            &mut tb.sim,
            PonyCommand::Send {
                conn,
                stream: 0,
                len: STREAM_MSG_BYTES,
            },
        );
    };
    for _ in 0..STREAM_WINDOW {
        submit_one(&mut tb, &mut a);
    }
    let mut delivered = 0u64;
    while tb.sim.now() < deadline {
        tb.run_us(PUMP_US);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { .. } = c {
                delivered += 1;
            }
        }
        for c in a.take_completions() {
            if let PonyCompletion::OpDone { .. } = c {
                submit_one(&mut tb, &mut a);
            }
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let virtual_nanos = (tb.sim.now() - t0).as_nanos();
    let (finalized, retained) = tb
        .recorder
        .as_ref()
        .map(|r| (r.finalized(), r.retained()))
        .unwrap_or((0, 0));
    let packets = engine_packets(&mut tb, 0, "src") + engine_packets(&mut tb, 1, "sink");
    RunResult {
        ops: delivered,
        packets,
        virtual_nanos,
        finalized,
        retained,
        wall_secs,
    }
}

fn json_leaf(r: &RunResult) -> String {
    format!(
        concat!(
            "{{\"ops\": {}, \"packets\": {}, \"virtual_nanos\": {}, ",
            "\"finalized_traces\": {}, \"retained_traces\": {}, ",
            "\"wall_secs\": {:.6}, \"wall_pkts_per_sec\": {:.1}, ",
            "\"sim_mops_per_sec\": {:.4}}}"
        ),
        r.ops,
        r.packets,
        r.virtual_nanos,
        r.finalized,
        r.retained,
        r.wall_secs,
        r.wall_pkts_per_sec(),
        r.sim_mops(),
    )
}

fn row(name: &str, r: &RunResult) {
    println!(
        "{:<10} {:>8} {:>9} {:>15} {:>9} {:>9} {:>14.0} {:>9.4}",
        name,
        r.ops,
        r.packets,
        r.virtual_nanos,
        r.finalized,
        r.retained,
        r.wall_pkts_per_sec(),
        r.sim_mops(),
    );
}

/// Runs `f` REPS times, keeps the lowest-wall-time rep, and asserts
/// the virtual-time metrics agree across reps (determinism).
fn best_of(f: impl Fn() -> RunResult) -> RunResult {
    let mut best = f();
    for _ in 1..REPS {
        let r = f();
        assert_eq!(r.ops, best.ops, "bench must be deterministic");
        assert_eq!(r.packets, best.packets, "bench must be deterministic");
        assert_eq!(r.virtual_nanos, best.virtual_nanos, "bench must be deterministic");
        assert_eq!(r.finalized, best.finalized, "sampling must be deterministic");
        if r.wall_secs < best.wall_secs {
            best = r;
        }
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr5.json".to_string());

    snap_bench::header("Trace overhead (PR 5): disabled vs 0% vs 1% vs 100% sampling");
    println!(
        "{:<10} {:>8} {:>9} {:>15} {:>9} {:>9} {:>14} {:>9}",
        "sampling", "ops", "packets", "virtual_ns", "traces", "retained", "wall pkt/s", "sim Mops"
    );

    let bare = best_of(|| streaming(None));
    row("disabled", &bare);
    let off = best_of(|| streaming(Some(0)));
    row("0%", &off);
    let one_pct = best_of(|| streaming(Some(TRACE_SAMPLE_SCALE / 100)));
    row("1%", &one_pct);
    let full = best_of(|| streaming(Some(TRACE_SAMPLE_SCALE)));
    row("100%", &full);

    // Invariant 1: with sampling off the trace hooks are invisible to
    // the model. Zero delta — not "within a budget".
    assert_eq!(off.virtual_nanos, bare.virtual_nanos, "0% sampling changed modeled time");
    assert_eq!(off.ops, bare.ops, "0% sampling changed modeled ops");
    assert_eq!(off.packets, bare.packets, "0% sampling changed modeled packets");
    assert_eq!(off.finalized, 0, "0% sampling must allocate no traces");
    // Invariant 2: the sampling rate never steers the model — every
    // nonzero rate puts the same header bytes on the wire.
    assert_eq!(one_pct.virtual_nanos, full.virtual_nanos, "rate changed modeled time");
    assert_eq!(one_pct.ops, full.ops, "rate changed modeled ops");
    assert_eq!(one_pct.packets, full.packets, "rate changed modeled packets");
    assert!(full.finalized > 0, "100% sampling finalized traces");
    assert!(
        full.retained > one_pct.retained,
        "100% sampling must retain more traces than 1%"
    );

    let overhead = |r: &RunResult| (1.0 - r.wall_pkts_per_sec() / bare.wall_pkts_per_sec()) * 100.0;
    let oh_off = overhead(&off);
    let oh_one = overhead(&one_pct);
    let oh_full = overhead(&full);
    // The honest modeled cost of tracing: header bytes on the wire
    // (the run is deadline-bound, so it surfaces as a packet-count
    // shift inside the window rather than a longer run).
    let wire_delta_pkts = full.packets as i64 - bare.packets as i64;
    println!();
    println!(
        "modeled delta: 0 with sampling off (asserted); wire-header cost \
         at any nonzero rate shifted {wire_delta_pkts} packet(s) in the \
         window; wall overhead: {oh_off:.2}% at 0%, {oh_one:.2}% at 1%, \
         {oh_full:.2}% at 100% ({} traces finalized at 100%)",
        full.finalized
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"trace_overhead\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"duration_ms\": {DURATION_MS},");
    let _ = writeln!(json, "  \"streaming\": {{");
    let _ = writeln!(json, "    \"disabled\": {},", json_leaf(&bare));
    let _ = writeln!(json, "    \"sample_0pct\": {},", json_leaf(&off));
    let _ = writeln!(json, "    \"sample_1pct\": {},", json_leaf(&one_pct));
    let _ = writeln!(json, "    \"sample_100pct\": {}", json_leaf(&full));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"modeled_delta_sampling_off\": 0, \
         \"modeled_wire_delta_packets\": {wire_delta_pkts}, \
         \"wall_pct_0pct\": {oh_off:.3}, \
         \"wall_pct_1pct\": {oh_one:.3}, \"wall_pct_100pct\": {oh_full:.3}}}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
