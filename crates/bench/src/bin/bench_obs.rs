//! Observability bench: the PR-10 flight-recorder claims.
//!
//! Three experiments on fixed-seed testbeds:
//!
//! 1. **Recorder overhead.** The PR-2 streaming workload runs bare,
//!    then with a [`FlightRecorder`] sampling every millisecond (CPU
//!    sampler pre-hook included). Sampling is a pure read of modeled
//!    state, so the attached run must be *modeled-identical* — same
//!    ops, same packets, same virtual clock — which is hard-asserted;
//!    the wall-clock cost of carrying the recorder is reported against
//!    a 3% budget.
//!
//! 2. **Scheduling-mode attribution sweep.** The same workload under
//!    dedicated / spreading / compacting scheduling, recorder attached.
//!    For every host the published per-core busy/spin/wake split must
//!    sum *exactly* (nanosecond equality) to the group's total CPU
//!    ledger, and per-engine busy must sum to the group's engine time —
//!    the invariant that makes the `cpu.*` lanes trustworthy.
//!
//! 3. **Gray-failure timeline.** A 2-rack Clos (2 spines) runs a
//!    cross-rack closed loop while a lossy-link gray failure comes and
//!    goes; an SLO burn-rate alert must fire during the failure and
//!    resolve after the heal. The run exports a Chrome-trace JSON
//!    (`TIMELINE_pr10.json`) merging causal spans, CPU counter lanes,
//!    and the fault/alert instants on one virtual-time axis.
//!
//! Virtual-time metrics are deterministic under the fixed seed
//! (asserted); only wall-clock varies. Writes `BENCH_pr10.json` (path
//! overridable as argv[1]; timeline path as argv[2]) and prints tables.
//!
//! Run with: `cargo run --release --bin bench_obs`

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use snap_repro::core::group::SchedulingMode;
use snap_repro::obs::{
    AlertState, FlightRecorder, Objective, RecorderConfig, SloEngine, SloSpec, Timeline,
};
use snap_repro::pony::client::{PonyClient, PonyCommand, PonyCompletion};
use snap_repro::sim::fault::{FaultEvent, FaultPlan};
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};
use snap_repro::topo::ClosSpec;

const SEED: u64 = 42;
const DURATION_MS: u64 = 50;
/// Wall-clock reps per variant; the fastest rep is reported.
const REPS: usize = 7;
const PUMP_US: u64 = 20;
const STREAM_MSG_BYTES: u64 = 4096;
const STREAM_WINDOW: usize = 32;
const CADENCE_US: u64 = 1000;

struct RunResult {
    ops: u64,
    packets: u64,
    ticks: u64,
    points: usize,
    virtual_secs: f64,
    wall_secs: f64,
}

impl RunResult {
    fn wall_pkts_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_secs
    }
}

fn engine_packets(tb: &mut Testbed, host: usize, app: &str) -> u64 {
    use snap_repro::pony::engine::PonyEngine;
    let id = tb.hosts[host].module.engine_for(app).expect("app exists");
    tb.hosts[host].group.with_engine(id, |e| {
        e.as_any()
            .downcast_mut::<PonyEngine>()
            .expect("pony engine")
            .stats()
            .tx_packets
    })
}

/// The PR-2 streaming workload, optionally with the flight recorder
/// (and its CPU sampler) ticking on the millisecond cadence.
fn streaming(recorded: bool, mode: SchedulingMode) -> (RunResult, Option<FlightRecorder>) {
    let mut tb = Testbed::new(TestbedConfig {
        seed: SEED,
        cores_per_host: 4,
        mode,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "src", |_| {});
    let mut b = tb.pony_app(1, "sink", |_| {});
    let conn = tb.connect(0, "src", 1, "sink");
    let rec = recorded.then(|| {
        let rec = tb.flight_recorder(RecorderConfig {
            cadence: Nanos::from_micros(CADENCE_US),
            ..RecorderConfig::default()
        });
        rec.start(&mut tb.sim);
        rec
    });
    let deadline = tb.sim.now() + Nanos::from_millis(DURATION_MS);
    let t0 = tb.sim.now();
    let wall = Instant::now();
    let submit_one = |tb: &mut Testbed, a: &mut PonyClient| {
        a.submit(
            &mut tb.sim,
            PonyCommand::Send {
                conn,
                stream: 0,
                len: STREAM_MSG_BYTES,
            },
        );
    };
    for _ in 0..STREAM_WINDOW {
        submit_one(&mut tb, &mut a);
    }
    let mut delivered = 0u64;
    while tb.sim.now() < deadline {
        tb.run_us(PUMP_US);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { .. } = c {
                delivered += 1;
            }
        }
        for c in a.take_completions() {
            if let PonyCompletion::OpDone { .. } = c {
                submit_one(&mut tb, &mut a);
            }
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let virtual_secs = (tb.sim.now() - t0).as_secs_f64();
    if let Some(r) = &rec {
        r.stop();
    }
    let packets = engine_packets(&mut tb, 0, "src") + engine_packets(&mut tb, 1, "sink");
    let result = RunResult {
        ops: delivered,
        packets,
        ticks: rec.as_ref().map(|r| r.ticks()).unwrap_or(0),
        points: rec.as_ref().map(|r| r.retained_points()).unwrap_or(0),
        virtual_secs,
        wall_secs,
    };
    (result, rec)
}

/// Runs the bare/recorded pair REPS times *interleaved* (so slow
/// machine phases hit both variants alike), keeps each variant's
/// lowest-wall-time rep, and asserts the virtual-time metrics agree
/// across reps (determinism).
fn best_pair(mode: &SchedulingMode) -> (RunResult, RunResult) {
    let keep = |best: &mut RunResult, r: RunResult| {
        assert_eq!(r.ops, best.ops, "bench must be deterministic");
        assert_eq!(r.packets, best.packets, "bench must be deterministic");
        assert_eq!(r.ticks, best.ticks, "bench must be deterministic");
        if r.wall_secs < best.wall_secs {
            *best = r;
        }
    };
    let mut bare = streaming(false, mode.clone()).0;
    let mut recorded = streaming(true, mode.clone()).0;
    for _ in 1..REPS {
        keep(&mut bare, streaming(false, mode.clone()).0);
        keep(&mut recorded, streaming(true, mode.clone()).0);
    }
    (bare, recorded)
}

fn row(name: &str, r: &RunResult) {
    println!(
        "{:<16} {:>10} {:>10} {:>7} {:>8} {:>14.0}",
        name,
        r.ops,
        r.packets,
        r.ticks,
        r.points,
        r.wall_pkts_per_sec(),
    );
}

fn json_leaf(r: &RunResult) -> String {
    format!(
        concat!(
            "{{\"ops\": {}, \"packets\": {}, \"ticks\": {}, \"points\": {}, ",
            "\"virtual_secs\": {:.6}, \"wall_secs\": {:.6}, \"wall_pkts_per_sec\": {:.1}}}"
        ),
        r.ops, r.packets, r.ticks, r.points, r.virtual_secs, r.wall_secs, r.wall_pkts_per_sec(),
    )
}

/// Per-mode CPU attribution totals, read back from the recorder's
/// registry and cross-checked against the group ledgers.
struct ModeSplit {
    busy: u64,
    spin: u64,
    wake: u64,
    idle: u64,
    exact: bool,
}

fn mode_sweep(mode: SchedulingMode) -> ModeSplit {
    let mut tb = Testbed::new(TestbedConfig {
        seed: SEED,
        cores_per_host: 4,
        mode,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "src", |_| {});
    let mut b = tb.pony_app(1, "sink", |_| {});
    let conn = tb.connect(0, "src", 1, "sink");
    let rec = tb.flight_recorder(RecorderConfig {
        cadence: Nanos::from_micros(CADENCE_US),
        ..RecorderConfig::default()
    });
    rec.start(&mut tb.sim);
    for _ in 0..STREAM_WINDOW {
        a.submit(
            &mut tb.sim,
            PonyCommand::Send {
                conn,
                stream: 0,
                len: STREAM_MSG_BYTES,
            },
        );
    }
    let deadline = tb.sim.now() + Nanos::from_millis(10);
    while tb.sim.now() < deadline {
        tb.run_us(PUMP_US);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { .. } = c {}
        }
        for c in a.take_completions() {
            if let PonyCompletion::OpDone { .. } = c {
                a.submit(
                    &mut tb.sim,
                    PonyCommand::Send {
                        conn,
                        stream: 0,
                        len: STREAM_MSG_BYTES,
                    },
                );
            }
        }
    }
    rec.stop();
    // One final sample so the registry carries the up-to-date split.
    rec.sample_once(&mut tb.sim);
    let now = tb.sim.now();
    let snap = rec.registry().snapshot(now);
    let mut split = ModeSplit {
        busy: 0,
        spin: 0,
        wake: 0,
        idle: 0,
        exact: true,
    };
    for (h, host) in tb.hosts.iter().enumerate() {
        let total = host.group.cpu(now);
        let mut host_sum = 0u64;
        let mut engine_sum = 0u64;
        for name in snap.names_under(&format!("cpu.h{h}.core")) {
            let v = snap.counter(name).unwrap_or(0);
            if name.ends_with(".busy_ns") {
                split.busy += v;
                host_sum += v;
            } else if name.ends_with(".spin_ns") {
                split.spin += v;
                host_sum += v;
            } else if name.ends_with(".wake_ns") {
                split.wake += v;
                host_sum += v;
            } else if name.ends_with(".idle_ns") {
                split.idle += v;
            }
        }
        for name in snap.names_under(&format!("cpu.h{h}.engine.")) {
            engine_sum += snap.counter(name).unwrap_or(0);
        }
        // The invariant the whole exercise rests on: every group
        // nanosecond lands on exactly one core, every engine
        // nanosecond on exactly one engine.
        assert_eq!(
            host_sum,
            total.total().as_nanos(),
            "host {h}: per-core split must sum to the group CPU total"
        );
        assert_eq!(
            engine_sum,
            total.engine.as_nanos(),
            "host {h}: per-engine split must sum to the group engine time"
        );
        split.exact &= host_sum == total.total().as_nanos();
    }
    split
}

fn mode_row(name: &str, s: &ModeSplit) {
    let total = (s.busy + s.spin + s.wake + s.idle) as f64;
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>12} {:>7.1}% {:>6}",
        name,
        s.busy,
        s.spin,
        s.wake,
        s.idle,
        (s.busy + s.spin + s.wake) as f64 / total * 100.0,
        if s.exact { "exact" } else { "DRIFT" },
    );
}

fn mode_leaf(s: &ModeSplit) -> String {
    format!(
        "{{\"busy_ns\": {}, \"spin_ns\": {}, \"wake_ns\": {}, \"idle_ns\": {}, \"exact\": {}}}",
        s.busy, s.spin, s.wake, s.idle, s.exact,
    )
}

struct TimelineResult {
    ops: u64,
    alerts_fired: usize,
    alerts_resolved: usize,
    spans: bool,
    counters: bool,
    instants: bool,
    json: String,
}

/// The 2-rack gray-failure scenario: cross-rack closed loop, lossy
/// link mid-run, burn-rate alert firing and resolving, everything
/// merged into one Chrome-trace file.
fn gray_failure_timeline() -> TimelineResult {
    const FAULT_AT_MS: u64 = 5;
    const HEAL_AT_MS: u64 = 12;
    const END_MS: u64 = 30;
    const LATENCY_SLO_NS: u64 = 150_000;

    let mut tb = Testbed::new(TestbedConfig {
        seed: SEED,
        hosts: 4,
        cores_per_host: 4,
        topology: Some(ClosSpec::clos(2, 2, 2)),
        trace_sample_ppm: 20_000,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "src", |_| {});
    let mut b = tb.pony_app(2, "sink", |_| {});
    let conn = tb.connect(0, "src", 2, "sink");

    let rec = tb.flight_recorder(RecorderConfig {
        cadence: Nanos::from_micros(100),
        capacity: 1024,
    });
    rec.start(&mut tb.sim);
    let mut slo = SloEngine::new();
    slo.add(SloSpec {
        name: "xrack-latency".to_string(),
        objective: Objective::LatencyBelow {
            series: "workload.latency_ns".to_string(),
            threshold_ns: LATENCY_SLO_NS,
        },
        target: 0.99,
        short_window: Nanos::from_micros(500),
        long_window: Nanos::from_millis(2),
        burn_threshold: 5.0,
    });

    let plan = FaultPlan::new()
        .at(
            Nanos::from_millis(FAULT_AT_MS),
            FaultEvent::LinkLossy {
                from: 0,
                to: 2,
                prob: 0.25,
            },
        )
        .at(
            Nanos::from_millis(HEAL_AT_MS),
            FaultEvent::LinkLossy {
                from: 0,
                to: 2,
                prob: 0.0,
            },
        );
    tb.install_fault_plan(&plan);

    let latency = rec.registry().histogram("workload.latency_ns");
    let ops_counter = rec.registry().counter("workload.ops");
    let mut submitted_at: HashMap<u64, Nanos> = HashMap::new();
    let submit_one = |tb: &mut Testbed, a: &mut PonyClient, map: &mut HashMap<u64, Nanos>| {
        let op = a.submit(
            &mut tb.sim,
            PonyCommand::Send {
                conn,
                stream: 0,
                len: 2048,
            },
        );
        map.insert(op, tb.sim.now());
    };
    submit_one(&mut tb, &mut a, &mut submitted_at);
    let mut ops = 0u64;
    let deadline = Nanos::from_millis(END_MS);
    while tb.sim.now() < deadline {
        tb.run_us(PUMP_US);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { .. } = c {}
        }
        for c in a.take_completions_at(tb.sim.now()) {
            if let PonyCompletion::OpDone { op, .. } = c {
                if let Some(t0) = submitted_at.remove(&op) {
                    latency.record(tb.sim.now().saturating_sub(t0).as_nanos());
                    ops_counter.inc();
                    ops += 1;
                }
                submit_one(&mut tb, &mut a, &mut submitted_at);
            }
        }
        slo.evaluate(&rec, tb.sim.now());
    }
    rec.stop();

    let fired = slo
        .events()
        .iter()
        .filter(|e| e.state == AlertState::Firing)
        .count();
    let resolved = slo
        .events()
        .iter()
        .filter(|e| e.state == AlertState::Ok)
        .count();

    let mut tl = Timeline::new();
    for h in 0..tb.hosts.len() {
        tl.name_process(h as u64, &format!("host h{h}"));
    }
    if let Some(tracer) = &tb.recorder {
        tl.add_traces(&tracer.completed());
    }
    tl.add_series_under(&rec, "cpu.h0.core");
    tl.add_series_under(&rec, "cpu.h2.core");
    tl.add_series(&rec, "workload.latency_ns");
    tl.add_series(&rec, "workload.ops");
    tl.add_alerts(&slo);
    tl.add_instant(Nanos::from_millis(FAULT_AT_MS), "fault: link 0->2 lossy 25%");
    tl.add_instant(Nanos::from_millis(HEAL_AT_MS), "fault: link 0->2 healed");
    let json = tl.to_json();
    TimelineResult {
        ops,
        alerts_fired: fired,
        alerts_resolved: resolved,
        spans: json.contains("\"ph\": \"X\""),
        counters: json.contains("\"ph\": \"C\""),
        instants: json.contains("\"ph\": \"i\""),
        json,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr10.json".to_string());
    let timeline_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "TIMELINE_pr10.json".to_string());

    snap_bench::header("Observability (PR 10): recorder overhead + CPU attribution + timeline");
    println!(
        "{:<16} {:>10} {:>10} {:>7} {:>8} {:>14}",
        "variant", "ops", "packets", "ticks", "points", "wall pkt/s"
    );

    // Experiment 1: recorder attached vs bare, modeled-identical.
    let dedicated = SchedulingMode::Dedicated { cores: vec![0, 1] };
    let (bare, recorded) = best_pair(&dedicated);
    row("bare", &bare);
    row("recorder", &recorded);
    assert_eq!(
        recorded.ops, bare.ops,
        "recorder-attached run changed modeled ops"
    );
    assert_eq!(
        recorded.packets, bare.packets,
        "recorder-attached run changed modeled packets"
    );
    assert_eq!(
        recorded.virtual_secs, bare.virtual_secs,
        "recorder-attached run changed the virtual clock"
    );
    assert!(recorded.ticks > 0, "recorder never ticked");
    let wall_overhead_pct = (1.0 - recorded.wall_pkts_per_sec() / bare.wall_pkts_per_sec()) * 100.0;
    let within = wall_overhead_pct < 3.0;
    println!();
    println!(
        "recorder overhead: modeled-identical (asserted), {wall_overhead_pct:.2}% wall-clock \
         over {} ticks — {}",
        recorded.ticks,
        if within { "within 3%" } else { "OVER the 3% budget" }
    );

    // Experiment 2: per-core attribution across scheduling modes.
    println!();
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>12} {:>8} {:>6}",
        "mode", "busy ns", "spin ns", "wake ns", "idle ns", "snap%", "sum"
    );
    let ded = mode_sweep(SchedulingMode::Dedicated { cores: vec![0, 1] });
    mode_row("dedicated", &ded);
    let spread = mode_sweep(SchedulingMode::Spreading);
    mode_row("spreading", &spread);
    let compact = mode_sweep(SchedulingMode::Compacting {
        slo: Nanos::from_micros(5),
        rebalance_poll: Nanos::from_micros(10),
        idle_block: Nanos::from_micros(100),
    });
    mode_row("compacting", &compact);
    println!("attribution: per-core split sums exactly to group CPU in every mode (asserted)");

    // Experiment 3: 2-rack gray-failure timeline export.
    let tl = gray_failure_timeline();
    assert!(tl.spans, "timeline lost its causal spans");
    assert!(tl.counters, "timeline lost its CPU counter lanes");
    assert!(tl.instants, "timeline lost its fault/alert instants");
    assert!(
        tl.alerts_fired > 0,
        "gray failure never fired the burn-rate alert"
    );
    assert!(
        tl.alerts_resolved > 0,
        "healed link never resolved the alert"
    );
    std::fs::write(&timeline_path, &tl.json).expect("write timeline json");
    println!();
    println!(
        "timeline: {} ops, alert fired {}x / resolved {}x, spans+lanes+instants on one axis",
        tl.ops, tl.alerts_fired, tl.alerts_resolved
    );
    println!("wrote {timeline_path} ({} bytes)", tl.json.len());

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"obs_flight_recorder\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"duration_ms\": {DURATION_MS},");
    let _ = writeln!(json, "  \"cadence_us\": {CADENCE_US},");
    let _ = writeln!(json, "  \"overhead\": {{");
    let _ = writeln!(json, "    \"bare\": {},", json_leaf(&bare));
    let _ = writeln!(json, "    \"recorder\": {},", json_leaf(&recorded));
    let _ = writeln!(
        json,
        "    \"modeled_identical\": true, \"wall_pct\": {wall_overhead_pct:.3}, \
         \"within_3pct\": {within}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"attribution\": {{");
    let _ = writeln!(json, "    \"dedicated\": {},", mode_leaf(&ded));
    let _ = writeln!(json, "    \"spreading\": {},", mode_leaf(&spread));
    let _ = writeln!(json, "    \"compacting\": {}", mode_leaf(&compact));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"timeline\": {{");
    let _ = writeln!(
        json,
        "    \"ops\": {}, \"alerts_fired\": {}, \"alerts_resolved\": {}, \
         \"spans\": {}, \"cpu_lanes\": {}, \"instants\": {}, \"bytes\": {}",
        tl.ops,
        tl.alerts_fired,
        tl.alerts_resolved,
        tl.spans,
        tl.counters,
        tl.instants,
        tl.json.len()
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
