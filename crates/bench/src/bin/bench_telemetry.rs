//! Telemetry overhead bench: the PR-3 near-free claim.
//!
//! Runs the PR-2 streaming workload (4 KB messages, windowed source)
//! twice — once bare, once with a [`StatsModule`] polling both engines
//! and the fabric every millisecond — and reports wall-clock and
//! modeled throughput for each. Because the datapath itself is
//! uninstrumented (engines keep plain `u64` counters; all telemetry
//! cost sits in the periodic control-plane poll), the instrumented run
//! must stay within a few percent of bare on every metric.
//!
//! Deterministic per variant under the fixed seed (asserted across
//! reps); wall-clock numbers vary with the machine but the overhead
//! stays small. Writes `BENCH_pr3.json` (path overridable as argv[1])
//! and prints a table.
//!
//! Run with: `cargo run --release --bin bench_telemetry`

use std::fmt::Write as _;
use std::time::Instant;

use snap_repro::pony::client::{PonyClient, PonyCommand, PonyCompletion};
use snap_repro::pony::engine::PonyEngine;
use snap_repro::sim::Nanos;
use snap_repro::telemetry::StatsConfig;
use snap_repro::testbed::{Testbed, TestbedConfig};

const SEED: u64 = 42;
const DURATION_MS: u64 = 50;
/// Wall-clock reps per variant; the fastest rep is reported. Virtual
/// metrics are identical across reps (fixed seed), so the minimum only
/// filters scheduler/cache noise.
const REPS: usize = 7;
const PUMP_US: u64 = 20;
const STREAM_MSG_BYTES: u64 = 4096;
const STREAM_WINDOW: usize = 32;
const POLL_PERIOD_US: u64 = 1000;

struct RunResult {
    ops: u64,
    packets: u64,
    polls: u64,
    virtual_secs: f64,
    wall_secs: f64,
}

impl RunResult {
    fn wall_pkts_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_secs
    }
    fn sim_mops(&self) -> f64 {
        self.ops as f64 / self.virtual_secs / 1e6
    }
}

fn engine_packets(tb: &mut Testbed, host: usize, app: &str) -> u64 {
    let id = tb.hosts[host].module.engine_for(app).expect("app exists");
    tb.hosts[host].group.with_engine(id, |e| {
        e.as_any()
            .downcast_mut::<PonyEngine>()
            .expect("pony engine")
            .stats()
            .tx_packets
    })
}

/// The PR-2 streaming workload, optionally with telemetry attached.
fn streaming(instrumented: bool) -> RunResult {
    let mut tb = Testbed::new(TestbedConfig {
        seed: SEED,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "src", |_| {});
    let mut b = tb.pony_app(1, "sink", |_| {});
    let conn = tb.connect(0, "src", 1, "sink");
    let stats = instrumented.then(|| {
        let stats = tb.stats_module(StatsConfig {
            poll_period: Nanos::from_micros(POLL_PERIOD_US),
        });
        stats.start(&mut tb.sim);
        stats
    });
    let deadline = tb.sim.now() + Nanos::from_millis(DURATION_MS);
    let t0 = tb.sim.now();
    let wall = Instant::now();
    let submit_one = |tb: &mut Testbed, a: &mut PonyClient| {
        a.submit(
            &mut tb.sim,
            PonyCommand::Send {
                conn,
                stream: 0,
                len: STREAM_MSG_BYTES,
            },
        );
    };
    for _ in 0..STREAM_WINDOW {
        submit_one(&mut tb, &mut a);
    }
    let mut delivered = 0u64;
    while tb.sim.now() < deadline {
        tb.run_us(PUMP_US);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { .. } = c {
                delivered += 1;
            }
        }
        for c in a.take_completions() {
            if let PonyCompletion::OpDone { .. } = c {
                submit_one(&mut tb, &mut a);
            }
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let virtual_secs = (tb.sim.now() - t0).as_secs_f64();
    let polls = stats
        .as_ref()
        .map(|s| {
            s.stop();
            s.snapshot(tb.sim.now())
                .counter("stats.polls")
                .unwrap_or(0)
        })
        .unwrap_or(0);
    if let Some(s) = &stats {
        // Sanity: the instrumented run actually observed the traffic.
        let snap = s.snapshot(tb.sim.now());
        assert!(
            snap.counter("engine.h0.src.tx_packets").unwrap_or(0) > 0,
            "telemetry saw the workload"
        );
    }
    let packets = engine_packets(&mut tb, 0, "src") + engine_packets(&mut tb, 1, "sink");
    RunResult {
        ops: delivered,
        packets,
        polls,
        virtual_secs,
        wall_secs,
    }
}

fn json_leaf(r: &RunResult) -> String {
    format!(
        concat!(
            "{{\"ops\": {}, \"packets\": {}, \"polls\": {}, ",
            "\"virtual_secs\": {:.6}, \"wall_secs\": {:.6}, ",
            "\"wall_pkts_per_sec\": {:.1}, \"sim_mops_per_sec\": {:.4}}}"
        ),
        r.ops,
        r.packets,
        r.polls,
        r.virtual_secs,
        r.wall_secs,
        r.wall_pkts_per_sec(),
        r.sim_mops(),
    )
}

fn row(name: &str, r: &RunResult) {
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>14.0} {:>10.4}",
        name,
        r.ops,
        r.packets,
        r.polls,
        r.wall_pkts_per_sec(),
        r.sim_mops(),
    );
}

/// Runs `f` REPS times, keeps the lowest-wall-time rep, and asserts
/// the virtual-time metrics agree across reps (determinism).
fn best_of(f: impl Fn() -> RunResult) -> RunResult {
    let mut best = f();
    for _ in 1..REPS {
        let r = f();
        assert_eq!(r.ops, best.ops, "bench must be deterministic");
        assert_eq!(r.packets, best.packets, "bench must be deterministic");
        if r.wall_secs < best.wall_secs {
            best = r;
        }
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());

    snap_bench::header("Telemetry overhead (PR 3): instrumented vs uninstrumented");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>14} {:>10}",
        "variant", "ops", "packets", "polls", "wall pkt/s", "sim Mops"
    );

    let bare = best_of(|| streaming(false));
    row("uninstrumented", &bare);
    let inst = best_of(|| streaming(true));
    row("instrumented", &inst);

    // Wall-clock overhead of carrying the stats module (harness cost),
    // and modeled overhead (did polling perturb the simulated rack?).
    let wall_overhead_pct =
        (1.0 - inst.wall_pkts_per_sec() / bare.wall_pkts_per_sec()) * 100.0;
    let ops_overhead_pct = (1.0 - inst.ops as f64 / bare.ops as f64) * 100.0;
    let within = wall_overhead_pct < 3.0 && ops_overhead_pct.abs() < 3.0;
    println!();
    println!(
        "telemetry overhead: {wall_overhead_pct:.2}% wall-clock, \
         {ops_overhead_pct:.2}% modeled ops ({} polls) — {}",
        inst.polls,
        if within { "within 3%" } else { "OVER the 3% budget" }
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"telemetry_overhead\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"duration_ms\": {DURATION_MS},");
    let _ = writeln!(json, "  \"poll_period_us\": {POLL_PERIOD_US},");
    let _ = writeln!(json, "  \"streaming\": {{");
    let _ = writeln!(json, "    \"uninstrumented\": {},", json_leaf(&bare));
    let _ = writeln!(json, "    \"instrumented\": {}", json_leaf(&inst));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"wall_pct\": {wall_overhead_pct:.3}, \
         \"modeled_ops_pct\": {ops_overhead_pct:.3}, \"within_3pct\": {within}}}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
