//! Datapath batching bench: the PR-2 trajectory harness.
//!
//! Runs two workloads over the simulated rack — request/response
//! ping-pong and small-message streaming — once with the batched
//! datapath (default 16-packet polling/burst) and once with a
//! batch-of-1 ablation, and reports both *harness* efficiency
//! (wall-clock packets/sec: fewer simulator events per packet) and
//! *modeled* efficiency (simulated Mops/s and engine CPU ns per
//! packet: per-burst fixed costs amortize across packet trains).
//!
//! Deterministic for the virtual-time metrics under a fixed seed;
//! wall-clock numbers vary with the machine but the batched/batch-1
//! ordering is stable. Writes `BENCH_pr2.json` (path overridable as
//! argv[1]) and prints a table.
//!
//! Run with: `cargo run --release --bin bench_datapath`

use std::fmt::Write as _;
use std::time::Instant;

use snap_repro::pony::client::{PonyClient, PonyCommand, PonyCompletion};
use snap_repro::pony::engine::PonyEngine;
use snap_repro::testbed::{Testbed, TestbedConfig};

const SEED: u64 = 42;
const DURATION_MS: u64 = 50;
/// Wall-clock reps per configuration; the fastest rep is reported.
/// Virtual-time metrics are identical across reps (fixed seed), so
/// taking the minimum wall time only filters scheduler/cache noise.
const REPS: usize = 5;
const PUMP_US: u64 = 20;
const STREAM_MSG_BYTES: u64 = 4096;
const STREAM_WINDOW: usize = 32;

struct RunResult {
    poll_batch: usize,
    ops: u64,
    packets: u64,
    virtual_secs: f64,
    wall_secs: f64,
}

impl RunResult {
    fn wall_pkts_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_secs
    }
    fn sim_mops(&self) -> f64 {
        self.ops as f64 / self.virtual_secs / 1e6
    }
}

struct Metered {
    res: RunResult,
    cpu_ns_per_packet: f64,
}

fn new_testbed() -> Testbed {
    Testbed::new(TestbedConfig {
        seed: SEED,
        ..TestbedConfig::default()
    })
}

fn engine_packets(tb: &mut Testbed, host: usize, app: &str) -> u64 {
    let id = tb.hosts[host].module.engine_for(app).expect("app exists");
    tb.hosts[host].group.with_engine(id, |e| {
        let pe = e
            .as_any()
            .downcast_mut::<PonyEngine>()
            .expect("pony engine");
        pe.stats().tx_packets
    })
}

fn total_engine_cpu_ns(tb: &mut Testbed) -> u64 {
    (0..tb.hosts.len())
        .map(|h| tb.host_cpu(h).engine.as_nanos())
        .sum()
}

/// One op = one completed round trip (64 B each way).
fn ping_pong(poll_batch: usize) -> Metered {
    let mut tb = new_testbed();
    let mut a = tb.pony_app(0, "ping", |c| c.poll_batch = poll_batch);
    let mut b = tb.pony_app(1, "pong", |c| c.poll_batch = poll_batch);
    let conn = tb.connect(0, "ping", 1, "pong");
    let deadline = tb.sim.now() + snap_repro::sim::Nanos::from_millis(DURATION_MS);
    let t0 = tb.sim.now();
    let wall = Instant::now();
    let mut rtts = 0u64;
    a.submit(
        &mut tb.sim,
        PonyCommand::Send {
            conn,
            stream: 0,
            len: 64,
        },
    );
    while tb.sim.now() < deadline {
        tb.run_us(PUMP_US);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { .. } = c {
                b.submit(
                    &mut tb.sim,
                    PonyCommand::Send {
                        conn,
                        stream: 0,
                        len: 64,
                    },
                );
            }
        }
        for c in a.take_completions() {
            if let PonyCompletion::RecvMsg { .. } = c {
                rtts += 1;
                a.submit(
                    &mut tb.sim,
                    PonyCommand::Send {
                        conn,
                        stream: 0,
                        len: 64,
                    },
                );
            }
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let virtual_secs = (tb.sim.now() - t0).as_secs_f64();
    let packets = engine_packets(&mut tb, 0, "ping") + engine_packets(&mut tb, 1, "pong");
    let cpu = total_engine_cpu_ns(&mut tb);
    Metered {
        cpu_ns_per_packet: cpu as f64 / packets as f64,
        res: RunResult {
            poll_batch,
            ops: rtts,
            packets,
            virtual_secs,
            wall_secs,
        },
    }
}

/// One op = one 4 KB message delivered; a window of sends keeps the
/// source engine saturated so packet trains actually form.
fn streaming(poll_batch: usize) -> Metered {
    let mut tb = new_testbed();
    let mut a = tb.pony_app(0, "src", |c| c.poll_batch = poll_batch);
    let mut b = tb.pony_app(1, "sink", |c| c.poll_batch = poll_batch);
    let conn = tb.connect(0, "src", 1, "sink");
    let deadline = tb.sim.now() + snap_repro::sim::Nanos::from_millis(DURATION_MS);
    let t0 = tb.sim.now();
    let wall = Instant::now();
    let submit_one = |tb: &mut Testbed, a: &mut PonyClient| {
        a.submit(
            &mut tb.sim,
            PonyCommand::Send {
                conn,
                stream: 0,
                len: STREAM_MSG_BYTES,
            },
        );
    };
    for _ in 0..STREAM_WINDOW {
        submit_one(&mut tb, &mut a);
    }
    let mut delivered = 0u64;
    while tb.sim.now() < deadline {
        tb.run_us(PUMP_US);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { .. } = c {
                delivered += 1;
            }
        }
        // Refill the window as sends complete.
        for c in a.take_completions() {
            if let PonyCompletion::OpDone { .. } = c {
                submit_one(&mut tb, &mut a);
            }
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let virtual_secs = (tb.sim.now() - t0).as_secs_f64();
    let packets = engine_packets(&mut tb, 0, "src") + engine_packets(&mut tb, 1, "sink");
    let cpu = total_engine_cpu_ns(&mut tb);
    Metered {
        cpu_ns_per_packet: cpu as f64 / packets as f64,
        res: RunResult {
            poll_batch,
            ops: delivered,
            packets,
            virtual_secs,
            wall_secs,
        },
    }
}

fn json_leaf(m: &Metered) -> String {
    format!(
        concat!(
            "{{\"poll_batch\": {}, \"ops\": {}, \"packets\": {}, ",
            "\"virtual_secs\": {:.6}, \"wall_secs\": {:.6}, ",
            "\"wall_pkts_per_sec\": {:.1}, \"sim_mops_per_sec\": {:.4}, ",
            "\"sim_cpu_ns_per_packet\": {:.1}}}"
        ),
        m.res.poll_batch,
        m.res.ops,
        m.res.packets,
        m.res.virtual_secs,
        m.res.wall_secs,
        m.res.wall_pkts_per_sec(),
        m.res.sim_mops(),
        m.cpu_ns_per_packet,
    )
}

fn row(name: &str, m: &Metered) {
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>12.0} {:>10.4} {:>12.1}",
        name,
        m.res.poll_batch,
        m.res.ops,
        m.res.packets,
        m.res.wall_pkts_per_sec(),
        m.res.sim_mops(),
        m.cpu_ns_per_packet,
    );
}

/// Runs `f` REPS times and keeps the rep with the lowest wall time.
/// Asserts the virtual-time metrics agree across reps (determinism).
fn best_of(f: impl Fn() -> Metered) -> Metered {
    let mut best = f();
    for _ in 1..REPS {
        let m = f();
        assert_eq!(m.res.ops, best.res.ops, "bench must be deterministic");
        assert_eq!(m.res.packets, best.res.packets, "bench must be deterministic");
        if m.res.wall_secs < best.res.wall_secs {
            best = m;
        }
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());

    snap_bench::header("Datapath batching (PR 2): batched vs batch-of-1");
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "workload", "batch", "ops", "packets", "wall pkt/s", "sim Mops", "cpu ns/pkt"
    );

    let pp_batched = best_of(|| ping_pong(16));
    row("ping_pong", &pp_batched);
    let pp_one = best_of(|| ping_pong(1));
    row("ping_pong", &pp_one);
    let st_batched = best_of(|| streaming(16));
    row("streaming", &st_batched);
    let st_one = best_of(|| streaming(1));
    row("streaming", &st_one);

    let speedup_wall = st_batched.res.wall_pkts_per_sec() / st_one.res.wall_pkts_per_sec();
    let cpu_ratio = st_one.cpu_ns_per_packet / st_batched.cpu_ns_per_packet;
    println!();
    println!(
        "streaming: batched is {speedup_wall:.2}x wall-clock throughput, \
         {cpu_ratio:.2}x less simulated CPU per packet"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"datapath_batching\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"duration_ms\": {DURATION_MS},");
    let _ = writeln!(json, "  \"workloads\": {{");
    let _ = writeln!(json, "    \"ping_pong\": {{");
    let _ = writeln!(json, "      \"batched\": {},", json_leaf(&pp_batched));
    let _ = writeln!(json, "      \"batch1\": {}", json_leaf(&pp_one));
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"streaming\": {{");
    let _ = writeln!(json, "      \"batched\": {},", json_leaf(&st_batched));
    let _ = writeln!(json, "      \"batch1\": {}", json_leaf(&st_one));
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"streaming_batched_vs_batch1\": {{\"wall_speedup\": {speedup_wall:.3}, \
         \"sim_cpu_per_packet_ratio\": {cpu_ratio:.3}}}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
