//! Benchmark harness for the Snap reproduction.
//!
//! Every table and figure in the paper's evaluation (§5) has a
//! corresponding `[[bench]]` target in this crate (see `DESIGN.md` for
//! the index). The figure benches are plain `harness = false` binaries
//! that drive the simulator and print paper-style rows; `micro` is a
//! Criterion suite over the real lock-free data structures.
//!
//! [`rack`] implements the §5.2 all-to-all RPC rack used by
//! Fig. 6(b)/(c)/(d) and Fig. 7, for both Snap/Pony and the kernel-TCP
//! baseline.

pub mod rack;

/// Prints a bench header in a consistent format.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}
