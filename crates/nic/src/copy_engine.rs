//! Intel I/OAT DMA copy-engine model (§3.4).
//!
//! "Pony Express exploits stateless offloads, including the Intel I/OAT
//! DMA device to offload memory copy operations. ... the asynchronous
//! interactions around DMA [are] a natural fit for Snap, with its
//! continuously-executing packet processing pipelines."
//!
//! The model charges the engine only the descriptor setup cost
//! ([`snap_sim::costs::IOAT_SETUP_NS`]); the copy itself proceeds
//! off-CPU at [`snap_sim::costs::IOAT_BYTES_PER_NS`] on a single
//! channel (FIFO), and a completion callback fires when done — exactly
//! the contract the Table 1 I/OAT row depends on.

use std::cell::RefCell;
use std::rc::Rc;

use snap_sim::costs;
use snap_sim::{Nanos, Sim};

/// Counters for a copy engine.
#[derive(Debug, Clone, Default)]
pub struct CopyEngineStats {
    /// Copies submitted.
    pub submitted: u64,
    /// Copies completed.
    pub completed: u64,
    /// Bytes copied.
    pub bytes: u64,
}

struct Inner {
    /// FIFO channel occupancy: when the in-flight copies will drain.
    busy_until: Nanos,
    stats: CopyEngineStats,
}

/// An asynchronous DMA copy engine (one channel).
#[derive(Clone)]
pub struct CopyEngine {
    inner: Rc<RefCell<Inner>>,
}

impl Default for CopyEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CopyEngine {
    /// Creates an idle copy engine.
    pub fn new() -> Self {
        CopyEngine {
            inner: Rc::new(RefCell::new(Inner {
                busy_until: Nanos::ZERO,
                stats: CopyEngineStats::default(),
            })),
        }
    }

    /// CPU cost the submitting engine pays per copy (descriptor setup
    /// and completion handling); the data movement itself is off-CPU.
    pub fn cpu_cost(&self) -> Nanos {
        Nanos(costs::IOAT_SETUP_NS)
    }

    /// Submits an asynchronous copy of `bytes`; `on_done` fires when
    /// the DMA completes.
    pub fn submit(&self, sim: &mut Sim, bytes: u64, on_done: impl FnOnce(&mut Sim) + 'static) {
        let done_at = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.submitted += 1;
            inner.stats.bytes += bytes;
            let start = inner.busy_until.max(sim.now());
            let done = start + Nanos((bytes as f64 / costs::IOAT_BYTES_PER_NS).ceil() as u64);
            inner.busy_until = done;
            done
        };
        let engine = self.clone();
        sim.schedule_at(done_at, move |sim| {
            engine.inner.borrow_mut().stats.completed += 1;
            on_done(sim);
        });
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CopyEngineStats {
        self.inner.borrow().stats.clone()
    }

    /// Earliest time a newly submitted copy would start.
    pub fn busy_until(&self) -> Nanos {
        self.inner.borrow().busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn copy_completes_after_transfer_time() {
        let mut sim = Sim::new();
        let ce = CopyEngine::new();
        let done_at = Rc::new(Cell::new(Nanos::ZERO));
        let d = done_at.clone();
        // 16000 bytes at 16 B/ns = 1000 ns.
        ce.submit(&mut sim, 16_000, move |sim| d.set(sim.now()));
        sim.run();
        assert_eq!(done_at.get(), Nanos(1_000));
        let s = ce.stats();
        assert_eq!((s.submitted, s.completed, s.bytes), (1, 1, 16_000));
    }

    #[test]
    fn channel_serializes_copies() {
        let mut sim = Sim::new();
        let ce = CopyEngine::new();
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let t = times.clone();
            ce.submit(&mut sim, 16_000, move |sim| t.borrow_mut().push(sim.now()));
        }
        sim.run();
        assert_eq!(*times.borrow(), vec![Nanos(1_000), Nanos(2_000), Nanos(3_000)]);
    }

    #[test]
    fn cpu_cost_is_fixed_and_small() {
        let ce = CopyEngine::new();
        // The whole point of the offload: CPU cost is independent of
        // copy size and far below the inline copy cost for an MTU.
        assert_eq!(ce.cpu_cost(), Nanos(costs::IOAT_SETUP_NS));
        assert!(ce.cpu_cost() < costs::copy_cost(5_000));
    }

    #[test]
    fn idle_engine_starts_immediately() {
        let mut sim = Sim::new();
        sim.schedule_at(Nanos(500), |_| {});
        sim.run();
        let ce = CopyEngine::new();
        let done_at = Rc::new(Cell::new(Nanos::ZERO));
        let d = done_at.clone();
        ce.submit(&mut sim, 160, move |sim| d.set(sim.now()));
        sim.run();
        assert_eq!(done_at.get(), Nanos(510));
    }
}
