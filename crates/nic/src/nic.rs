//! The virtual multi-queue NIC.
//!
//! Models the pieces of a datacenter NIC the paper's software actually
//! interacts with:
//!
//! * bounded **rx descriptor rings** (one per queue) that engines poll
//!   in batches (§3.1);
//! * **receive-side steering**: exact-match filters first (the unit
//!   detached/attached during transparent upgrades, §4 — while a flow's
//!   filter is detached its packets are dropped, which is the paper's
//!   blackout packet loss), then RSS hashing as the fallback;
//! * **tx descriptor slot accounting**, which drives Pony Express's
//!   just-in-time packet generation ("there is no need for per-packet
//!   queueing in the engine", §3.1);
//! * optional **interrupt delivery** per queue, used by the spreading
//!   engine scheduler ("blocks on interrupt notification when idle",
//!   §2.4).

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use snap_sim::Sim;

use crate::packet::Packet;

/// Interrupt callback: invoked with the simulator and the rx queue id.
pub type IrqHandler = Rc<dyn Fn(&mut Sim, u16)>;

/// Static NIC configuration.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Number of rx/tx queue pairs.
    pub num_queues: u16,
    /// Rx descriptor ring depth, in packets, per queue.
    pub rx_queue_depth: usize,
    /// Tx descriptor slots per queue.
    pub tx_queue_depth: usize,
    /// Line rate in Gbps.
    pub gbps: f64,
    /// Maximum transmission unit in bytes (payload capacity).
    pub mtu: u32,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            num_queues: 4,
            rx_queue_depth: 1024,
            tx_queue_depth: 1024,
            gbps: 50.0,
            mtu: 5000,
        }
    }
}

/// Counters exposed by the NIC.
#[derive(Debug, Clone, Default)]
pub struct NicStats {
    /// Packets handed to the fabric.
    pub tx_packets: u64,
    /// Bytes handed to the fabric (wire size).
    pub tx_bytes: u64,
    /// Packets delivered into rx rings.
    pub rx_packets: u64,
    /// Bytes delivered into rx rings.
    pub rx_bytes: u64,
    /// Packets dropped because the target rx ring was full.
    pub rx_overflow_drops: u64,
    /// Packets dropped because their steer key had no attached filter.
    pub rx_filter_drops: u64,
    /// Packets dropped due to CRC verification failure.
    pub rx_crc_drops: u64,
}

/// A virtual multi-queue NIC.
pub struct VirtNic {
    cfg: NicConfig,
    rx_queues: Vec<VecDeque<Packet>>,
    /// Available tx descriptor slots per queue; consumed on transmit,
    /// replenished when serialization completes.
    tx_slots: Vec<usize>,
    /// Exact-match steering filters: steer key -> rx queue.
    filters: HashMap<u64, u16>,
    /// Per-queue interrupt arming; disarmed queues are silently polled.
    irq_armed: Vec<bool>,
    irq_handler: Option<IrqHandler>,
    stats: NicStats,
}

impl VirtNic {
    /// Creates a NIC with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero queues or zero-depth rings.
    pub fn new(cfg: NicConfig) -> Self {
        assert!(cfg.num_queues > 0, "NIC needs at least one queue");
        assert!(cfg.rx_queue_depth > 0 && cfg.tx_queue_depth > 0);
        VirtNic {
            rx_queues: (0..cfg.num_queues).map(|_| VecDeque::new()).collect(),
            tx_slots: vec![cfg.tx_queue_depth; cfg.num_queues as usize],
            filters: HashMap::new(),
            irq_armed: vec![false; cfg.num_queues as usize],
            irq_handler: None,
            stats: NicStats::default(),
            cfg,
        }
    }

    /// NIC configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Installs the interrupt handler shared by all queues.
    pub fn set_irq_handler(&mut self, handler: IrqHandler) {
        self.irq_handler = Some(handler);
    }

    /// Arms or disarms interrupts on a queue. A spinning engine keeps
    /// its queue disarmed; a blocked engine arms it before sleeping.
    pub fn arm_irq(&mut self, queue: u16, armed: bool) {
        self.irq_armed[queue as usize] = armed;
    }

    /// Attaches an exact-match receive filter steering `key` to `queue`.
    pub fn attach_filter(&mut self, key: u64, queue: u16) {
        assert!(queue < self.cfg.num_queues, "filter targets missing queue");
        self.filters.insert(key, queue);
    }

    /// Detaches the filter for `key`; subsequent packets carrying that
    /// steer key are dropped (upgrade blackout loss, §4).
    ///
    /// Returns whether a filter was attached.
    pub fn detach_filter(&mut self, key: u64) -> bool {
        self.filters.remove(&key).is_some()
    }

    /// Currently attached (key, queue) filters, sorted by key.
    pub fn filters(&self) -> Vec<(u64, u16)> {
        let mut v: Vec<_> = self.filters.iter().map(|(&k, &q)| (k, q)).collect();
        v.sort_unstable();
        v
    }

    /// Free tx descriptor slots on a queue; Pony Express generates new
    /// packets only while this is non-zero.
    pub fn tx_slots_available(&self, queue: u16) -> usize {
        self.tx_slots[queue as usize]
    }

    /// Consumes one tx slot; the fabric calls [`VirtNic::complete_tx`]
    /// when the wire is done with the packet.
    ///
    /// Returns false (and consumes nothing) if no slot is free.
    pub fn take_tx_slot(&mut self, queue: u16) -> bool {
        let s = &mut self.tx_slots[queue as usize];
        if *s == 0 {
            return false;
        }
        *s -= 1;
        true
    }

    /// Returns a tx slot after serialization completes and records the
    /// transmit in the stats.
    pub fn complete_tx(&mut self, queue: u16, wire_bytes: u32) {
        let s = &mut self.tx_slots[queue as usize];
        debug_assert!(*s < self.cfg.tx_queue_depth, "tx slot over-return");
        *s += 1;
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += wire_bytes as u64;
    }

    /// Selects the rx queue for a packet: filters first, then RSS.
    ///
    /// Returns `None` if the packet must be dropped (steer key present
    /// but no filter attached).
    fn steer(&self, pkt: &Packet) -> Option<u16> {
        match pkt.steer_key {
            Some(key) => self.filters.get(&key).copied(),
            None => Some((pkt.rss_hash % self.cfg.num_queues as u64) as u16),
        }
    }

    /// Delivers a packet from the fabric into an rx ring.
    ///
    /// Returns the queue that should raise an interrupt, if any.
    pub fn deliver(&mut self, pkt: Packet) -> Option<u16> {
        if !pkt.crc_ok() {
            self.stats.rx_crc_drops += 1;
            return None;
        }
        let Some(queue) = self.steer(&pkt) else {
            self.stats.rx_filter_drops += 1;
            return None;
        };
        let ring = &mut self.rx_queues[queue as usize];
        if ring.len() >= self.cfg.rx_queue_depth {
            self.stats.rx_overflow_drops += 1;
            return None;
        }
        self.stats.rx_packets += 1;
        self.stats.rx_bytes += pkt.wire_size as u64;
        ring.push_back(pkt);
        self.irq_armed[queue as usize].then_some(queue)
    }

    /// Delivers a burst (packet train) from the fabric into rx rings,
    /// raising at most one interrupt per armed queue for the whole
    /// burst. Every per-packet check — CRC verification, steering,
    /// ring-depth admission — still runs packet by packet, so fault
    /// injection inside a burst behaves exactly as per-packet delivery.
    ///
    /// Returns the queues that should raise an interrupt, deduplicated
    /// in first-hit order.
    pub fn deliver_burst(&mut self, pkts: impl IntoIterator<Item = Packet>) -> Vec<u16> {
        let mut irqs: Vec<u16> = Vec::new();
        for pkt in pkts {
            if let Some(q) = self.deliver(pkt) {
                if !irqs.contains(&q) {
                    irqs.push(q);
                }
            }
        }
        irqs
    }

    /// The interrupt handler, for the fabric to invoke after delivery
    /// (outside any NIC borrow).
    pub fn irq_handler(&self) -> Option<IrqHandler> {
        self.irq_handler.clone()
    }

    /// Polls up to `max` packets from an rx queue (engine batch poll,
    /// §3.1: "the maximum number of packets processed is configurable").
    pub fn poll_rx(&mut self, queue: u16, max: usize, out: &mut Vec<Packet>) -> usize {
        let ring = &mut self.rx_queues[queue as usize];
        let n = max.min(ring.len());
        out.extend(ring.drain(..n));
        n
    }

    /// Packets waiting in an rx ring.
    pub fn rx_pending(&self, queue: u16) -> usize {
        self.rx_queues[queue as usize].len()
    }

    /// Total packets waiting across all rx rings.
    pub fn rx_pending_total(&self) -> usize {
        self.rx_queues.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn nic(queues: u16) -> VirtNic {
        VirtNic::new(NicConfig {
            num_queues: queues,
            rx_queue_depth: 4,
            tx_queue_depth: 2,
            ..NicConfig::default()
        })
    }

    fn pkt(rss: u64) -> Packet {
        Packet::new(1, 2, Bytes::from_static(b"data")).with_rss_hash(rss)
    }

    #[test]
    fn rss_spreads_by_hash() {
        let mut n = nic(4);
        for h in 0..8 {
            assert!(n.deliver(pkt(h)).is_none(), "irqs disarmed by default");
        }
        for q in 0..4 {
            assert_eq!(n.rx_pending(q), 2, "queue {q}");
        }
        assert_eq!(n.stats().rx_packets, 8);
    }

    #[test]
    fn filters_override_rss() {
        let mut n = nic(4);
        n.attach_filter(42, 3);
        let p = pkt(0).with_steer_key(42);
        n.deliver(p);
        assert_eq!(n.rx_pending(3), 1);
        assert_eq!(n.rx_pending(0), 0);
    }

    #[test]
    fn detached_filter_drops() {
        let mut n = nic(2);
        n.attach_filter(7, 1);
        assert!(n.detach_filter(7));
        assert!(!n.detach_filter(7), "double detach");
        n.deliver(pkt(0).with_steer_key(7));
        assert_eq!(n.stats().rx_filter_drops, 1);
        assert_eq!(n.rx_pending_total(), 0);
    }

    #[test]
    fn full_ring_tail_drops() {
        let mut n = nic(1);
        for _ in 0..6 {
            n.deliver(pkt(0));
        }
        assert_eq!(n.rx_pending(0), 4);
        assert_eq!(n.stats().rx_overflow_drops, 2);
    }

    #[test]
    fn corrupted_packet_dropped() {
        let mut n = nic(1);
        let mut p = pkt(0);
        p.corrupt(1, 1);
        n.deliver(p);
        assert_eq!(n.stats().rx_crc_drops, 1);
        assert_eq!(n.rx_pending_total(), 0);
    }

    #[test]
    fn irq_raised_only_when_armed() {
        let mut n = nic(1);
        assert_eq!(n.deliver(pkt(0)), None);
        n.arm_irq(0, true);
        assert_eq!(n.deliver(pkt(0)), Some(0));
        n.arm_irq(0, false);
        assert_eq!(n.deliver(pkt(0)), None);
    }

    #[test]
    fn poll_rx_batches() {
        let mut n = nic(1);
        for _ in 0..4 {
            n.deliver(pkt(0));
        }
        let mut out = Vec::new();
        assert_eq!(n.poll_rx(0, 3, &mut out), 3);
        assert_eq!(n.poll_rx(0, 3, &mut out), 1);
        assert_eq!(n.poll_rx(0, 3, &mut out), 0);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn burst_delivery_coalesces_irqs_but_checks_per_packet() {
        let mut n = nic(2);
        n.arm_irq(0, true);
        n.arm_irq(1, true);
        let mut bad = pkt(0);
        bad.corrupt(2, 2);
        // Burst mixing: two to queue 0, one corrupt, one to queue 1.
        let irqs = n.deliver_burst(vec![pkt(0), pkt(2), bad, pkt(1)]);
        assert_eq!(irqs, vec![0, 1], "one irq per queue per burst");
        assert_eq!(n.stats().rx_crc_drops, 1, "CRC still checked per packet");
        assert_eq!(n.rx_pending(0), 2);
        assert_eq!(n.rx_pending(1), 1);
    }

    #[test]
    fn tx_slot_accounting() {
        let mut n = nic(1);
        assert_eq!(n.tx_slots_available(0), 2);
        assert!(n.take_tx_slot(0));
        assert!(n.take_tx_slot(0));
        assert!(!n.take_tx_slot(0), "slots exhausted");
        n.complete_tx(0, 100);
        assert_eq!(n.tx_slots_available(0), 1);
        assert_eq!(n.stats().tx_packets, 1);
        assert_eq!(n.stats().tx_bytes, 100);
    }

    #[test]
    fn filters_listing_sorted() {
        let mut n = nic(4);
        n.attach_filter(9, 1);
        n.attach_filter(3, 2);
        assert_eq!(n.filters(), vec![(3, 2), (9, 1)]);
    }
}
