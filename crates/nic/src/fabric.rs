//! The simulated datacenter fabric: host uplinks + a top-of-rack switch.
//!
//! Models exactly the effects the paper's evaluation exercises:
//!
//! * **Serialization delay** at the sender uplink and the switch egress
//!   port (line-rate Gbps from the NIC config / fabric config);
//! * **Propagation + switch forwarding latency** (constants from
//!   [`snap_sim::costs`]);
//! * **Bounded egress buffers with tail drop** — congestion loss, which
//!   Pony Express's reliability layer must recover from ("one-sided
//!   operations fall back to relying on congestion control", §3.3);
//! * **Injectable random loss** for failure-injection tests;
//! * **QoS classes**: the transport class may use the full egress
//!   buffer, best-effort only a fraction — a deliberately simplified
//!   stand-in for the dedicated fabric QoS classes Pony Express runs on
//!   (§3.1). The two classes never compete in any reproduced figure, so
//!   strict-priority scheduling is not modeled.
//!
//! The fabric owns every [`VirtNic`]; all state advances on the
//! single-threaded [`Sim`] event loop via a cloneable [`FabricHandle`].

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use snap_sim::costs;
use snap_sim::time::transmit_time;
use snap_sim::{Nanos, Rng, Sim};

use crate::nic::{NicConfig, VirtNic};
use crate::packet::{HostId, Packet, QosClass};

/// Fabric-wide configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Propagation delay per link hop (host↔switch).
    pub prop_delay: Nanos,
    /// Switch forwarding latency.
    pub switch_latency: Nanos,
    /// Egress buffer per switch port, in bytes.
    pub switch_buffer_bytes: u64,
    /// Fraction of the egress buffer available to best-effort traffic.
    pub best_effort_buffer_fraction: f64,
    /// Independent per-packet random loss probability.
    pub loss_prob: f64,
    /// Independent per-packet payload-corruption probability. Corrupted
    /// packets keep their original CRC, so the receiving NIC's
    /// end-to-end check rejects them (§3.4's CRC offload story).
    pub corrupt_prob: f64,
    /// NIC DMA latency per direction.
    pub nic_dma: Nanos,
    /// Seed for the loss-injection RNG.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            prop_delay: Nanos(costs::LINK_PROP_NS),
            switch_latency: Nanos(costs::SWITCH_LATENCY_NS),
            switch_buffer_bytes: 4 * 1024 * 1024,
            best_effort_buffer_fraction: 0.8,
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            nic_dma: Nanos(costs::NIC_DMA_NS),
            seed: 0xF0CA_CC1A,
        }
    }
}

/// Fabric counters.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Packets delivered to a destination NIC.
    pub delivered: u64,
    /// Packets dropped at a full switch egress buffer.
    pub switch_drops: u64,
    /// Packets dropped by random loss injection.
    pub random_drops: u64,
    /// Packets dropped at the switch because their src/dst pair was
    /// partitioned.
    pub partition_drops: u64,
    /// Packets whose payload was corrupted in flight (they continue to
    /// the destination, where the CRC check rejects them).
    pub corrupted: u64,
}

/// Why packets destined to one host were lost — the per-host drop
/// breakdown surfaced through [`FabricHandle::drop_reasons`]. Combines
/// switch-side fault-injection counters with the destination NIC's own
/// receive-path drop counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropReasons {
    /// Packets the NIC rejected because the end-to-end CRC failed.
    pub crc_bad: u64,
    /// Packets dropped at the switch by an active fabric partition.
    pub partition: u64,
    /// Packets whose payload the fabric corrupted in flight.
    pub corruption: u64,
    /// Packets dropped because the target rx ring was full.
    pub no_buffer: u64,
}

impl DropReasons {
    /// Total drops across all reasons.
    pub fn total(&self) -> u64 {
        self.crc_bad + self.partition + self.corruption + self.no_buffer
    }
}

/// Per-destination-host fault-injection drop counters kept by the
/// fabric (the NIC keeps its own receive-path counters).
#[derive(Debug, Clone, Copy, Default)]
struct HostFaultDrops {
    partition: u64,
    corruption: u64,
}

struct EgressPort {
    busy_until: Nanos,
    queued_bytes: u64,
}

/// The fabric: NICs, uplinks, and the ToR switch.
pub struct Fabric {
    cfg: FabricConfig,
    nics: HashMap<HostId, VirtNic>,
    uplink_busy: HashMap<HostId, Nanos>,
    egress: HashMap<HostId, EgressPort>,
    /// Partitioned host pairs, stored normalized (min, max).
    partitions: HashSet<(HostId, HostId)>,
    /// Stalled tx queues: (host, queue) -> virtual time the stall lifts.
    queue_stalls: HashMap<(HostId, u16), Nanos>,
    /// Fault-injection drops broken down by destination host.
    fault_drops: HashMap<HostId, HostFaultDrops>,
    rng: Rng,
    stats: FabricStats,
    next_host: HostId,
}

fn norm_pair(a: HostId, b: HostId) -> (HostId, HostId) {
    (a.min(b), a.max(b))
}

impl Fabric {
    fn new(cfg: FabricConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        Fabric {
            cfg,
            nics: HashMap::new(),
            uplink_busy: HashMap::new(),
            egress: HashMap::new(),
            partitions: HashSet::new(),
            queue_stalls: HashMap::new(),
            fault_drops: HashMap::new(),
            rng,
            stats: FabricStats::default(),
            next_host: 0,
        }
    }

    fn add_host(&mut self, nic_cfg: NicConfig) -> HostId {
        let id = self.next_host;
        self.next_host += 1;
        self.nics.insert(id, VirtNic::new(nic_cfg));
        self.uplink_busy.insert(id, Nanos::ZERO);
        self.egress.insert(
            id,
            EgressPort {
                busy_until: Nanos::ZERO,
                queued_bytes: 0,
            },
        );
        id
    }
}

/// Cloneable handle to a shared [`Fabric`]; the public API.
#[derive(Clone)]
pub struct FabricHandle {
    inner: Rc<RefCell<Fabric>>,
}

/// Error returned by [`FabricHandle::transmit`] when the source NIC has
/// no free tx descriptor slot; the packet is handed back so the caller
/// can regenerate it later (just-in-time transmission, §3.1).
#[derive(Debug)]
pub struct TxBusy(pub Packet);

impl FabricHandle {
    /// Creates an empty fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        FabricHandle {
            inner: Rc::new(RefCell::new(Fabric::new(cfg))),
        }
    }

    /// Adds a host with the given NIC configuration; returns its id.
    pub fn add_host(&self, nic_cfg: NicConfig) -> HostId {
        self.inner.borrow_mut().add_host(nic_cfg)
    }

    /// Number of hosts on the fabric.
    pub fn num_hosts(&self) -> usize {
        self.inner.borrow().nics.len()
    }

    /// Fabric counters snapshot.
    pub fn stats(&self) -> FabricStats {
        self.inner.borrow().stats.clone()
    }

    /// Sets the random loss probability (failure injection).
    pub fn set_loss_prob(&self, p: f64) {
        self.inner.borrow_mut().cfg.loss_prob = p.clamp(0.0, 1.0);
    }

    /// Sets the per-packet payload-corruption probability (failure
    /// injection). Corrupted packets carry a stale CRC and are rejected
    /// by the destination NIC's receive path.
    pub fn set_corrupt_prob(&self, p: f64) {
        self.inner.borrow_mut().cfg.corrupt_prob = p.clamp(0.0, 1.0);
    }

    /// Partitions the fabric between `a` and `b`: packets in either
    /// direction are dropped at the switch until [`FabricHandle::heal`].
    /// Idempotent.
    pub fn partition(&self, a: HostId, b: HostId) {
        self.inner.borrow_mut().partitions.insert(norm_pair(a, b));
    }

    /// Heals a partition between `a` and `b`. Idempotent; harmless if
    /// the pair was never partitioned.
    pub fn heal(&self, a: HostId, b: HostId) {
        self.inner.borrow_mut().partitions.remove(&norm_pair(a, b));
    }

    /// Returns true if `a` and `b` are currently partitioned.
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        self.inner.borrow().partitions.contains(&norm_pair(a, b))
    }

    /// Stalls a host's tx queue until absolute time `until` (models a
    /// hung DMA channel): packets transmitted on it during the stall
    /// wait for the stall to lift before serialization starts.
    pub fn stall_queue_until(&self, host: HostId, queue: u16, until: Nanos) {
        let mut fabric = self.inner.borrow_mut();
        let entry = fabric.queue_stalls.entry((host, queue)).or_insert(Nanos::ZERO);
        *entry = (*entry).max(until);
    }

    /// The per-host drop breakdown: switch-side fault drops plus the
    /// destination NIC's own receive-path drop counters.
    pub fn drop_reasons(&self, host: HostId) -> DropReasons {
        let fabric = self.inner.borrow();
        let fault = fabric.fault_drops.get(&host).copied().unwrap_or_default();
        let (crc_bad, no_buffer) = fabric
            .nics
            .get(&host)
            .map(|n| (n.stats().rx_crc_drops, n.stats().rx_overflow_drops))
            .unwrap_or((0, 0));
        DropReasons {
            crc_bad,
            partition: fault.partition,
            corruption: fault.corruption,
            no_buffer,
        }
    }

    /// Runs `f` with mutable access to a host's NIC.
    ///
    /// # Panics
    ///
    /// Panics if the host does not exist, or if called re-entrantly
    /// from within another fabric borrow.
    pub fn with_nic<R>(&self, host: HostId, f: impl FnOnce(&mut VirtNic) -> R) -> R {
        let mut fabric = self.inner.borrow_mut();
        let nic = fabric.nics.get_mut(&host).expect("unknown host");
        f(nic)
    }

    /// Transmits a packet from its `src` host on the given tx queue.
    ///
    /// Fails with [`TxBusy`] when no tx descriptor slot is free. On
    /// success the packet is fully simulated: uplink serialization,
    /// switch queueing (or drop), egress serialization, delivery into
    /// the destination NIC's rx ring, and interrupt delivery if armed.
    pub fn transmit(&self, sim: &mut Sim, queue: u16, pkt: Packet) -> Result<(), TxBusy> {
        let (depart_uplink, src, wire) = {
            let mut fabric = self.inner.borrow_mut();
            let src = pkt.src;
            let nic = fabric.nics.get_mut(&src).expect("unknown source host");
            if !nic.take_tx_slot(queue) {
                return Err(TxBusy(pkt));
            }
            let gbps = nic.config().gbps;
            let wire = pkt.wire_size;
            // Tx-side DMA: descriptor fetch + payload read from host
            // memory before bits hit the wire.
            let dma_ready = sim.now() + fabric.cfg.nic_dma;
            // A stalled queue holds its packets until the stall lifts,
            // but does not occupy the shared uplink while waiting —
            // other queues' traffic flows around the hung queue.
            let stall = fabric
                .queue_stalls
                .get(&(src, queue))
                .copied()
                .filter(|&until| until > sim.now())
                .unwrap_or(Nanos::ZERO);
            let ser = transmit_time(wire as u64, gbps);
            let busy = fabric.uplink_busy.get_mut(&src).expect("uplink exists");
            let start = (*busy).max(dma_ready);
            let end = start + ser;
            *busy = end;
            (end.max(stall + ser), src, wire)
        };

        // Tx descriptor completes when serialization finishes.
        let handle = self.clone();
        sim.schedule_at(depart_uplink, move |sim| {
            handle.with_nic(src, |nic| nic.complete_tx(queue, wire));
            handle.arrive_at_switch(sim, pkt);
        });
        Ok(())
    }

    /// Packet reaches the switch ingress; apply loss, buffer and
    /// egress-port serialization, then forward toward the destination.
    fn arrive_at_switch(&self, sim: &mut Sim, pkt: Packet) {
        let ingress = sim.now() + self.inner.borrow().cfg.prop_delay;
        let handle = self.clone();
        sim.schedule_at(ingress, move |sim| {
            let mut pkt = pkt;
            let departure = {
                let mut fabric = handle.inner.borrow_mut();
                // Random loss injection.
                let loss_prob = fabric.cfg.loss_prob;
                if loss_prob > 0.0 && fabric.rng.chance(loss_prob) {
                    fabric.stats.random_drops += 1;
                    return;
                }
                // Partition: the switch forwards nothing between the
                // partitioned pair.
                if fabric.partitions.contains(&norm_pair(pkt.src, pkt.dst)) {
                    fabric.stats.partition_drops += 1;
                    fabric.fault_drops.entry(pkt.dst).or_default().partition += 1;
                    return;
                }
                // Payload corruption: flip one bit, leave the CRC
                // stale; the packet still travels and burns bandwidth,
                // but the destination NIC rejects it.
                let corrupt_prob = fabric.cfg.corrupt_prob;
                if corrupt_prob > 0.0
                    && !pkt.payload.is_empty()
                    && fabric.rng.chance(corrupt_prob)
                {
                    let byte = fabric.rng.below(pkt.payload.len() as u64) as usize;
                    let bit = fabric.rng.below(8) as u8;
                    pkt.corrupt(byte, bit);
                    fabric.stats.corrupted += 1;
                    fabric.fault_drops.entry(pkt.dst).or_default().corruption += 1;
                }
                // Buffer admission at the destination egress port.
                let limit = match pkt.qos {
                    QosClass::Transport => fabric.cfg.switch_buffer_bytes,
                    QosClass::BestEffort => (fabric.cfg.switch_buffer_bytes as f64
                        * fabric.cfg.best_effort_buffer_fraction)
                        as u64,
                };
                let switch_latency = fabric.cfg.switch_latency;
                let Some(egress_gbps) = fabric.nics.get(&pkt.dst).map(|n| n.config().gbps)
                else {
                    // Destination host does not exist; treat as routed
                    // to a black hole.
                    fabric.stats.switch_drops += 1;
                    return;
                };
                let port = fabric
                    .egress
                    .get_mut(&pkt.dst)
                    .expect("nic implies egress port");
                if port.queued_bytes + pkt.wire_size as u64 > limit {
                    fabric.stats.switch_drops += 1;
                    return;
                }
                port.queued_bytes += pkt.wire_size as u64;
                let start = port.busy_until.max(sim.now() + switch_latency);
                let dep = start + transmit_time(pkt.wire_size as u64, egress_gbps);
                port.busy_until = dep;
                dep
            };
            let handle2 = handle.clone();
            sim.schedule_at(departure, move |sim| {
                {
                    let mut fabric = handle2.inner.borrow_mut();
                    if let Some(port) = fabric.egress.get_mut(&pkt.dst) {
                        port.queued_bytes -= pkt.wire_size as u64;
                    }
                }
                handle2.deliver(sim, pkt);
            });
        });
    }

    /// Final hop: propagation + rx DMA, then into the NIC rx ring.
    fn deliver(&self, sim: &mut Sim, pkt: Packet) {
        let (prop, dma) = {
            let fabric = self.inner.borrow();
            (fabric.cfg.prop_delay, fabric.cfg.nic_dma)
        };
        let handle = self.clone();
        sim.schedule_at(sim.now() + prop + dma, move |sim| {
            let (irq, handler) = {
                let mut fabric = handle.inner.borrow_mut();
                let dst = pkt.dst;
                let Some(nic) = fabric.nics.get_mut(&dst) else {
                    return;
                };
                let irq = nic.deliver(pkt);
                let handler = nic.irq_handler();
                if irq.is_some() {
                    fabric.stats.delivered += 1;
                } else {
                    // Delivery without interrupt still counts if the
                    // packet landed in a ring (check stats delta is
                    // overkill; deliver() already counted drops).
                    fabric.stats.delivered += 1;
                }
                (irq, handler)
            };
            // Invoke the interrupt outside the fabric borrow so the
            // handler can freely poll the NIC.
            if let (Some(queue), Some(handler)) = (irq, handler) {
                handler(sim, queue);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::cell::Cell;

    fn two_hosts(loss: f64) -> (FabricHandle, HostId, HostId) {
        let fabric = FabricHandle::new(FabricConfig {
            loss_prob: loss,
            ..FabricConfig::default()
        });
        let a = fabric.add_host(NicConfig::default());
        let b = fabric.add_host(NicConfig::default());
        (fabric, a, b)
    }

    fn packet(src: HostId, dst: HostId, len: usize) -> Packet {
        Packet::new(src, dst, Bytes::from(vec![7u8; len]))
    }

    #[test]
    fn end_to_end_delivery() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        fabric.transmit(&mut sim, 0, packet(a, b, 1000)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 1);
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 1);
        // Sanity on the latency: serialization (~167ns at 50G) + hops.
        let t = sim.now().as_nanos();
        assert!(t > 2_000 && t < 10_000, "delivery took {t}ns");
    }

    #[test]
    fn tx_slots_backpressure_and_recover() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let a = fabric.add_host(NicConfig {
            tx_queue_depth: 2,
            ..NicConfig::default()
        });
        let b = fabric.add_host(NicConfig::default());
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        let third = fabric.transmit(&mut sim, 0, packet(a, b, 100));
        assert!(third.is_err(), "slots exhausted");
        sim.run();
        // Slots returned after serialization.
        assert_eq!(fabric.with_nic(a, |n| n.tx_slots_available(0)), 2);
        let TxBusy(pkt) = third.unwrap_err();
        fabric.transmit(&mut sim, 0, pkt).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 3);
    }

    #[test]
    fn random_loss_drops_packets() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(1.0);
        for _ in 0..10 {
            fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
            sim.run();
        }
        assert_eq!(fabric.stats().random_drops, 10);
        assert_eq!(fabric.stats().delivered, 0);
    }

    #[test]
    fn partial_loss_statistics() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.3);
        for _ in 0..1000 {
            fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
            sim.run();
        }
        let s = fabric.stats();
        assert_eq!(s.delivered + s.random_drops, 1000);
        assert!(
            (250..350).contains(&(s.random_drops as i64)),
            "drops {} not near 30%",
            s.random_drops
        );
    }

    #[test]
    fn switch_buffer_tail_drops_under_burst() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig {
            switch_buffer_bytes: 10_000,
            ..FabricConfig::default()
        });
        let a = fabric.add_host(NicConfig {
            tx_queue_depth: 4096,
            gbps: 1000.0, // firehose ingress
            ..NicConfig::default()
        });
        let b = fabric.add_host(NicConfig {
            gbps: 1.0, // slow egress: builds the backlog
            ..NicConfig::default()
        });
        for _ in 0..200 {
            fabric.transmit(&mut sim, 0, packet(a, b, 1000)).unwrap();
        }
        sim.run();
        let s = fabric.stats();
        assert!(s.switch_drops > 0, "no drops despite tiny buffer");
        assert_eq!(s.delivered + s.switch_drops, 200);
    }

    #[test]
    fn interrupt_fires_on_armed_queue() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        let fired = Rc::new(Cell::new(0u32));
        let f2 = fired.clone();
        fabric.with_nic(b, |nic| {
            nic.set_irq_handler(Rc::new(move |_sim, _q| f2.set(f2.get() + 1)));
            nic.arm_irq(0, true);
        });
        let p = packet(a, b, 64).with_rss_hash(0);
        fabric.transmit(&mut sim, 0, p).unwrap();
        sim.run();
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn serialization_orders_same_link_packets() {
        // Two packets on the same uplink serialize back-to-back; the
        // second arrives strictly later.
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let arr = arrivals.clone();
        fabric.with_nic(b, |nic| {
            nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| {
                arr.borrow_mut().push(sim.now());
            }));
            nic.arm_irq(0, true);
        });
        let big = packet(a, b, 100_000); // ~16us at 50G
        let small = packet(a, b, 100).with_rss_hash(0);
        fabric.transmit(&mut sim, 0, big.with_rss_hash(0)).unwrap();
        fabric.transmit(&mut sim, 0, small).unwrap();
        sim.run();
        let arrivals = arrivals.borrow();
        assert_eq!(arrivals.len(), 2);
        let gap = (arrivals[1] - arrivals[0]).as_nanos();
        // The small packet waited behind the big one's serialization.
        assert!(gap < 1_000, "FIFO egress should deliver close together, gap {gap}ns");
        assert!(arrivals[0].as_nanos() > 16_000, "big packet serialization time");
    }

    #[test]
    fn partition_drops_until_healed() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        fabric.partition(a, b);
        assert!(fabric.is_partitioned(a, b));
        assert!(fabric.is_partitioned(b, a), "partitions are symmetric");
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        fabric.transmit(&mut sim, 0, packet(b, a, 100)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().partition_drops, 2);
        assert_eq!(fabric.stats().delivered, 0);
        assert_eq!(fabric.drop_reasons(a).partition, 1);
        assert_eq!(fabric.drop_reasons(b).partition, 1);
        fabric.heal(a, b);
        assert!(!fabric.is_partitioned(a, b));
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 1);
    }

    #[test]
    fn corruption_is_rejected_by_receive_crc() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig {
            corrupt_prob: 1.0,
            ..FabricConfig::default()
        });
        let a = fabric.add_host(NicConfig::default());
        let b = fabric.add_host(NicConfig::default());
        for _ in 0..10 {
            fabric.transmit(&mut sim, 0, packet(a, b, 500)).unwrap();
        }
        sim.run();
        assert_eq!(fabric.stats().corrupted, 10);
        // Every corrupted packet reached the NIC and was CRC-rejected.
        assert_eq!(fabric.with_nic(b, |n| n.stats().rx_crc_drops), 10);
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 0);
        let reasons = fabric.drop_reasons(b);
        assert_eq!(reasons.crc_bad, 10);
        assert_eq!(reasons.corruption, 10);
        assert_eq!(reasons.total(), 20);
        // Turning corruption off restores clean delivery.
        fabric.set_corrupt_prob(0.0);
        fabric.transmit(&mut sim, 0, packet(a, b, 500)).unwrap();
        sim.run();
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 1);
    }

    #[test]
    fn stalled_queue_delays_transmission() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        let stall_until = Nanos::from_micros(500);
        fabric.stall_queue_until(a, 0, stall_until);
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let arr = arrivals.clone();
        fabric.with_nic(b, |nic| {
            nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| {
                arr.borrow_mut().push(sim.now());
            }));
            nic.arm_irq(0, true);
            nic.arm_irq(1, true);
        });
        // Queue 0 is stalled; queue 1 is not.
        fabric.transmit(&mut sim, 0, packet(a, b, 100).with_rss_hash(0)).unwrap();
        fabric.transmit(&mut sim, 1, packet(a, b, 100).with_rss_hash(1)).unwrap();
        sim.run();
        let arrivals = arrivals.borrow();
        assert_eq!(arrivals.len(), 2);
        let (fast, slow) = (arrivals[0], arrivals[1]);
        assert!(fast < stall_until, "unstalled queue delivered promptly at {fast}");
        assert!(slow > stall_until, "stalled queue held until {stall_until}, got {slow}");
    }

    #[test]
    fn unknown_destination_is_dropped_not_panicking() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let a = fabric.add_host(NicConfig::default());
        fabric.transmit(&mut sim, 0, packet(a, 999, 100)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().switch_drops, 1);
    }
}
