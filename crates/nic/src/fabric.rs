//! The simulated datacenter fabric: host uplinks + a switching tier
//! compiled from a [`snap_topo::ClosSpec`].
//!
//! Models exactly the effects the paper's evaluation exercises:
//!
//! * **Serialization delay** at the sender uplink and every switch
//!   egress port on the path (line-rate Gbps from the NIC config /
//!   topology trunk config);
//! * **Propagation + switch forwarding latency** per hop (constants
//!   from [`snap_sim::costs`] for the host tier, trunk parameters from
//!   the topology for the spine tier);
//! * **Bounded egress buffers with tail drop** — congestion loss, which
//!   Pony Express's reliability layer must recover from ("one-sided
//!   operations fall back to relying on congestion control", §3.3);
//! * **Multi-rack routing**: hosts hang off leaf (top-of-rack)
//!   switches; cross-rack packets cross leaf → spine → leaf, with the
//!   spine chosen by deterministic seeded ECMP flow hashing
//!   ([`snap_topo::Topology::ecmp_spine`]) — pure hashing, so routing
//!   never consumes an RNG draw;
//! * **Injectable random loss** for failure-injection tests, plus
//!   topology-aware faults: trunk (leaf↔spine link) failures and leaf
//!   brownouts;
//! * **QoS classes**: the transport class may use the full egress
//!   buffer, best-effort only a fraction; per-priority weighted dequeue
//!   is available via [`snap_topo::QosSchedule::Wrr`] (the default
//!   FIFO discipline reproduces the legacy single-queue model exactly).
//!
//! The single-switch fabric of earlier PRs is the degenerate
//! [`snap_topo::ClosSpec::single_rack`] instance — [`FabricHandle::new`]
//! builds exactly that, and its behavior (RNG draw order, event
//! schedule, modeled times) is bit-identical to the pre-topology code.
//!
//! The fabric owns every [`VirtNic`]; all state advances on the
//! single-threaded [`Sim`] event loop via a cloneable [`FabricHandle`].

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use snap_sim::costs;
use snap_sim::time::transmit_time;
use snap_sim::trace::{Stage, TraceRecorder};
use snap_sim::{Nanos, Rng, Sim};
use snap_topo::{PortLanes, Topology};
// Re-exported so fabric consumers (telemetry, testbeds) can name
// switches and topologies without a direct snap-topo dependency.
pub use snap_topo::{ClosSpec, SwitchId};

use crate::nic::{NicConfig, VirtNic};
use crate::packet::{HostId, Packet, QosClass};

/// Priority lane index of a QoS class (order of [`QosClass::ALL`]).
fn prio(qos: QosClass) -> usize {
    match qos {
        QosClass::Transport => 0,
        QosClass::BestEffort => 1,
    }
}

/// Fabric-wide configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Propagation delay per link hop (host↔switch).
    pub prop_delay: Nanos,
    /// Switch forwarding latency.
    pub switch_latency: Nanos,
    /// Egress buffer per switch port, in bytes.
    pub switch_buffer_bytes: u64,
    /// Fraction of the egress buffer available to best-effort traffic.
    pub best_effort_buffer_fraction: f64,
    /// Independent per-packet random loss probability.
    pub loss_prob: f64,
    /// Independent per-packet payload-corruption probability. Corrupted
    /// packets keep their original CRC, so the receiving NIC's
    /// end-to-end check rejects them (§3.4's CRC offload story).
    pub corrupt_prob: f64,
    /// NIC DMA latency per direction.
    pub nic_dma: Nanos,
    /// Seed for the loss-injection RNG.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            prop_delay: Nanos(costs::LINK_PROP_NS),
            switch_latency: Nanos(costs::SWITCH_LATENCY_NS),
            switch_buffer_bytes: 4 * 1024 * 1024,
            best_effort_buffer_fraction: 0.8,
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            nic_dma: Nanos(costs::NIC_DMA_NS),
            seed: 0xF0CA_CC1A,
        }
    }
}

/// Fabric counters.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Packets delivered to a destination NIC.
    pub delivered: u64,
    /// Packets dropped at a full switch egress buffer.
    pub switch_drops: u64,
    /// Packets dropped by random loss injection.
    pub random_drops: u64,
    /// Packets dropped at the switch because their src/dst pair was
    /// partitioned.
    pub partition_drops: u64,
    /// Packets whose payload was corrupted in flight (they continue to
    /// the destination, where the CRC check rejects them).
    pub corrupted: u64,
    /// Packets silently dropped by a per-link gray loss fault.
    pub lossy_drops: u64,
    /// PFC pause storms injected against egress ports.
    pub pauses: u64,
    /// Packets rerouted around a quarantined link via an alternate path.
    pub rerouted: u64,
    /// Best-effort packets shed on a quarantined link (degraded mode
    /// sheds the best-effort class first, §2.5).
    pub quarantine_sheds: u64,
    /// Packets dropped by a browned-out leaf switch (topology fault).
    pub brownout_drops: u64,
    /// Cross-rack packets dropped because no spine with live trunks to
    /// both leaves remained (topology fault).
    pub trunk_down_drops: u64,
}

/// Why packets destined to one host were lost — the per-host drop
/// breakdown surfaced through [`FabricHandle::drop_reasons`]. Combines
/// switch-side fault-injection counters with the destination NIC's own
/// receive-path drop counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropReasons {
    /// Packets the NIC rejected because the end-to-end CRC failed.
    pub crc_bad: u64,
    /// Packets dropped at the switch by an active fabric partition.
    pub partition: u64,
    /// Packets whose payload the fabric corrupted in flight.
    pub corruption: u64,
    /// Packets dropped because the target rx ring was full.
    pub no_buffer: u64,
    /// Packets silently dropped by a gray lossy-link fault. No CRC
    /// evidence reaches the receiver — only probing or retransmit
    /// telemetry surfaces these.
    pub lossy: u64,
    /// Best-effort packets shed because their link was quarantined.
    pub quarantined: u64,
    /// Packets dropped by a browned-out leaf switch on the path.
    pub brownout: u64,
    /// Cross-rack packets dropped for want of a live trunk path.
    pub trunk_down: u64,
}

impl DropReasons {
    /// Total drops across all reasons.
    pub fn total(&self) -> u64 {
        self.crc_bad
            + self.partition
            + self.corruption
            + self.no_buffer
            + self.lossy
            + self.quarantined
            + self.brownout
            + self.trunk_down
    }
}

/// Per-destination-host fault-injection drop counters kept by the
/// fabric (the NIC keeps its own receive-path counters).
#[derive(Debug, Clone, Copy, Default)]
struct HostFaultDrops {
    partition: u64,
    corruption: u64,
    lossy: u64,
    quarantined: u64,
    brownout: u64,
    trunk_down: u64,
}

/// Per-directed-link (`src -> dst`) traffic and drop counters, surfaced
/// through [`FabricHandle::link_stats`]. Directed so telemetry can tell
/// which side of an asymmetric partition is black-holing traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Wire bytes delivered `src -> dst` (for utilization gauges).
    pub bytes: u64,
    /// Packets delivered `src -> dst`.
    pub delivered: u64,
    /// Packets `src -> dst` dropped by a partition (symmetric or
    /// one-way) at the switch.
    pub partition_drops: u64,
    /// Packets `src -> dst` corrupted in flight (they still burn
    /// bandwidth; the destination NIC CRC-rejects them).
    pub corrupted: u64,
    /// Packets `src -> dst` silently dropped by a gray lossy-link
    /// fault (no CRC evidence at the receiver).
    pub lossy_drops: u64,
    /// Packets `src -> dst` delayed by an injected jitter fault.
    pub jittered: u64,
    /// Total extra delay (ns) the jitter fault added on this link —
    /// `jitter_ns / jittered` is the mean injected delay.
    pub jitter_ns: u64,
    /// Packets rerouted around this link while it was quarantined.
    pub rerouted: u64,
    /// Best-effort packets shed on this link while quarantined.
    pub quarantine_sheds: u64,
}

/// Per-directed-trunk (`leaf -> spine` or `spine -> leaf`) traffic and
/// drop counters, surfaced through [`FabricHandle::trunks`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrunkStats {
    /// Wire bytes forwarded over the trunk (for utilization gauges).
    pub bytes: u64,
    /// Packets forwarded over the trunk.
    pub forwarded: u64,
    /// Packets tail-dropped at the trunk's egress buffer.
    pub drops: u64,
}

/// Verdict of the switch-ingress fault pipeline for one packet.
struct IngressPass {
    /// The packet is taking an alternate path around a quarantined
    /// link (cross-rack: a different ECMP spine; in-rack: a relay via
    /// a third host port pair).
    rerouted: bool,
    /// Extra delay accumulated at ingress (gray jitter, reroute hops,
    /// brownout latency) — applied at the first serialization point.
    extra: Nanos,
}

/// The fabric: NICs, uplinks, and the switching tier (one leaf per
/// rack, optionally joined by spines).
pub struct Fabric {
    cfg: FabricConfig,
    topo: Topology,
    nics: HashMap<HostId, VirtNic>,
    uplink_busy: HashMap<HostId, Nanos>,
    egress: HashMap<HostId, PortLanes>,
    /// Hosts added per rack — the in-rack alternate-path census used
    /// by quarantine rerouting.
    hosts_in_rack: HashMap<u32, u32>,
    /// Egress serialization state per directed trunk link.
    trunk_ports: HashMap<(SwitchId, SwitchId), PortLanes>,
    /// Failed trunks, keyed (leaf/rack, spine); both directions die.
    down_trunks: HashSet<(u32, u32)>,
    /// Browned-out leaf switches: rack -> (drop prob, extra latency).
    leaf_brownout: HashMap<u32, (f64, Nanos)>,
    /// Per-directed-trunk traffic/drop counters.
    trunk_stats: HashMap<(SwitchId, SwitchId), TrunkStats>,
    /// Egress-buffer drops broken down by switch and priority class —
    /// the per-hop attribution of `FabricStats::switch_drops`.
    switch_drops_by: BTreeMap<(SwitchId, QosClass), u64>,
    /// Partitioned host pairs, stored normalized (min, max).
    partitions: HashSet<(HostId, HostId)>,
    /// One-way partitions, stored directed (from, to): only packets
    /// `from -> to` are dropped.
    oneway_partitions: HashSet<(HostId, HostId)>,
    /// Per-directed-link traffic/drop counters, keyed (src, dst).
    links: HashMap<(HostId, HostId), LinkStats>,
    /// Stalled tx queues: (host, queue) -> virtual time the stall lifts.
    queue_stalls: HashMap<(HostId, u16), Nanos>,
    /// Fault-injection drops broken down by destination host.
    fault_drops: HashMap<HostId, HostFaultDrops>,
    /// Gray lossy links: (src, dst) -> silent per-packet drop prob.
    lossy_links: HashMap<(HostId, HostId), f64>,
    /// Gray jittery links: (src, dst) -> (median extra delay, sigma).
    jitter_links: HashMap<(HostId, HostId), (Nanos, f64)>,
    /// Quarantined directed links (health-detector verdicts): traffic
    /// reroutes via an alternate path when one exists, and best-effort
    /// traffic is shed.
    quarantined_links: HashSet<(HostId, HostId)>,
    /// PFC pause storms: dst host -> time the switch may serialize
    /// toward it again.
    paused_until: HashMap<HostId, Nanos>,
    rng: Rng,
    /// Dedicated RNG stream for gray-fault draws (per-link loss,
    /// jitter). Separate from `rng` so attaching a gray fault to one
    /// link never perturbs the draw order — and thus the modeled
    /// outcome — of unrelated traffic, and a healthy run with the gray
    /// machinery present is bit-identical to one without it.
    gray_rng: Rng,
    stats: FabricStats,
    next_host: HostId,
    /// Trace recorder for causal op tracing. Observation-only: stamps
    /// stage records against packets that carry a trace context but
    /// never changes timing, RNG draws, or drop decisions.
    recorder: Option<TraceRecorder>,
}

fn norm_pair(a: HostId, b: HostId) -> (HostId, HostId) {
    (a.min(b), a.max(b))
}

impl Fabric {
    fn new(cfg: FabricConfig, topo: Topology) -> Self {
        let rng = Rng::new(cfg.seed);
        let gray_rng = Rng::new(cfg.seed).stream(0x6a77_e25d);
        Fabric {
            cfg,
            topo,
            nics: HashMap::new(),
            uplink_busy: HashMap::new(),
            egress: HashMap::new(),
            hosts_in_rack: HashMap::new(),
            trunk_ports: HashMap::new(),
            down_trunks: HashSet::new(),
            leaf_brownout: HashMap::new(),
            trunk_stats: HashMap::new(),
            switch_drops_by: BTreeMap::new(),
            partitions: HashSet::new(),
            oneway_partitions: HashSet::new(),
            links: HashMap::new(),
            queue_stalls: HashMap::new(),
            fault_drops: HashMap::new(),
            lossy_links: HashMap::new(),
            jitter_links: HashMap::new(),
            quarantined_links: HashSet::new(),
            paused_until: HashMap::new(),
            rng,
            gray_rng,
            stats: FabricStats::default(),
            next_host: 0,
            recorder: None,
        }
    }

    fn add_host(&mut self, nic_cfg: NicConfig) -> HostId {
        let id = self.next_host;
        self.next_host += 1;
        assert!(
            u64::from(id) < self.topo.capacity(),
            "host {id} exceeds topology capacity {}",
            self.topo.capacity()
        );
        self.nics.insert(id, VirtNic::new(nic_cfg));
        self.uplink_busy.insert(id, Nanos::ZERO);
        self.egress.insert(id, PortLanes::default());
        *self.hosts_in_rack.entry(self.topo.rack_of(id)).or_insert(0) += 1;
        id
    }

    /// The switch-ingress fault pipeline at the *source leaf*: random
    /// loss, partition, quarantine shed/reroute, gray loss, in-flight
    /// corruption, gray jitter, leaf brownout. Returns `None` when the
    /// packet is dropped, otherwise the reroute verdict plus any extra
    /// delay to fold into the first serialization point.
    ///
    /// Shared verbatim by the per-packet, burst, in-rack and cross-rack
    /// paths so fault injection behaves identically packet-by-packet
    /// inside a train (same RNG draw order, same counters).
    fn ingress_admit(&mut self, now: Nanos, pkt: &mut Packet) -> Option<IngressPass> {
        let src_rack = self.topo.rack_of(pkt.src);
        let leaf = self.topo.trace_host(SwitchId::Leaf(src_rack));
        self.stamp(pkt, Stage::SwitchArrive, leaf, now);
        // Leaf brownout (topology fault): a sick top-of-rack switch
        // drops a fraction of everything transiting it and delays the
        // rest. Drawn from the gray stream so a healthy fabric's draw
        // order is untouched.
        let mut extra = Nanos::ZERO;
        if let Some(&(drop_prob, bo_extra)) = self.leaf_brownout.get(&src_rack) {
            if self.gray_rng.chance(drop_prob) {
                self.stats.brownout_drops += 1;
                self.fault_drops.entry(pkt.dst).or_default().brownout += 1;
                self.stamp(pkt, Stage::WireDrop, leaf, now);
                return None;
            }
            extra += bo_extra;
        }
        // Random loss injection.
        if self.cfg.loss_prob > 0.0 && self.rng.chance(self.cfg.loss_prob) {
            self.stats.random_drops += 1;
            self.stamp(pkt, Stage::WireDrop, leaf, now);
            return None;
        }
        // Partition: the switch forwards nothing between a symmetric
        // partitioned pair, and nothing in the dead direction of a
        // one-way partition. Drops are counted per directed link so
        // telemetry can tell which direction is black-holing.
        if self.partitions.contains(&norm_pair(pkt.src, pkt.dst))
            || self.oneway_partitions.contains(&(pkt.src, pkt.dst))
        {
            self.stats.partition_drops += 1;
            self.fault_drops.entry(pkt.dst).or_default().partition += 1;
            self.links.entry((pkt.src, pkt.dst)).or_default().partition_drops += 1;
            self.stamp(pkt, Stage::WireDrop, leaf, now);
            return None;
        }
        // Quarantine (a health-detector verdict, not a fault): where an
        // alternate path exists, traffic reroutes around the sick link
        // and skips its gray faults. In-rack the alternate is a relay
        // via any third host's ToR port pair (one extra switch hop);
        // cross-rack it is a different equal-cost spine (no extra
        // cost). Best-effort traffic is shed first rather than rerouted
        // (degraded mode sheds the best-effort class, reusing the QoS
        // split). With no alternate — a two-host rack, a single spine —
        // transport traffic soldiers on over the sick link.
        let same_rack = self.topo.same_rack(pkt.src, pkt.dst);
        let quarantined = self.quarantined_links.contains(&(pkt.src, pkt.dst));
        if quarantined && pkt.qos == QosClass::BestEffort {
            self.stats.quarantine_sheds += 1;
            self.fault_drops.entry(pkt.dst).or_default().quarantined += 1;
            self.links.entry((pkt.src, pkt.dst)).or_default().quarantine_sheds += 1;
            self.stamp(pkt, Stage::WireDrop, leaf, now);
            return None;
        }
        let rerouted = quarantined
            && if same_rack {
                self.hosts_in_rack.get(&src_rack).copied().unwrap_or(0) > 2
            } else {
                self.topo.spines() > 1
            };
        if rerouted {
            self.stats.rerouted += 1;
            self.links.entry((pkt.src, pkt.dst)).or_default().rerouted += 1;
        }
        // Gray loss: the link silently eats the packet — no CRC
        // evidence ever reaches the receiver, unlike corruption below.
        // Drawn from the dedicated gray RNG stream so healthy links'
        // draw order is untouched.
        if !rerouted {
            if let Some(&prob) = self.lossy_links.get(&(pkt.src, pkt.dst)) {
                if self.gray_rng.chance(prob) {
                    self.stats.lossy_drops += 1;
                    self.fault_drops.entry(pkt.dst).or_default().lossy += 1;
                    self.links.entry((pkt.src, pkt.dst)).or_default().lossy_drops += 1;
                    self.stamp(pkt, Stage::WireDrop, leaf, now);
                    return None;
                }
            }
        }
        // Payload corruption: flip one bit, leave the CRC stale; the
        // packet still travels and burns bandwidth, but the destination
        // NIC rejects it.
        if self.cfg.corrupt_prob > 0.0
            && !pkt.payload.is_empty()
            && self.rng.chance(self.cfg.corrupt_prob)
        {
            let byte = self.rng.below(pkt.payload.len() as u64) as usize;
            let bit = self.rng.below(8) as u8;
            pkt.corrupt(byte, bit);
            self.stats.corrupted += 1;
            self.fault_drops.entry(pkt.dst).or_default().corruption += 1;
            self.links.entry((pkt.src, pkt.dst)).or_default().corrupted += 1;
            self.stamp(pkt, Stage::WireCorrupt, leaf, now);
        }
        // Gray jitter: a misbehaving port delays rather than drops.
        // The extra delay is log-normal (median/sigma from the fault),
        // drawn from the gray stream, and attributed per link.
        if !rerouted {
            if let Some(&(median, sigma)) = self.jitter_links.get(&(pkt.src, pkt.dst)) {
                if !median.is_zero() {
                    let d = snap_sim::dist::log_normal(
                        &mut self.gray_rng,
                        median.as_nanos() as f64,
                        sigma,
                    ) as u64;
                    extra += Nanos(d);
                    let link = self.links.entry((pkt.src, pkt.dst)).or_default();
                    link.jittered += 1;
                    link.jitter_ns += d;
                }
            }
        }
        // An in-rack rerouted packet pays one extra switch traversal +
        // two extra link hops to relay through the alternate port pair.
        // A cross-rack reroute rides a different equal-cost spine: no
        // extra delay here.
        if rerouted && same_rack {
            extra += self.cfg.switch_latency + self.cfg.prop_delay * 2;
        }
        Some(IngressPass { rerouted, extra })
    }

    /// Egress buffer admission + serialization at the destination's
    /// leaf host-facing port. Returns the egress departure time, or
    /// `None` on a tail drop.
    fn local_egress_admit(&mut self, now: Nanos, pkt: &Packet, extra: Nanos) -> Option<Nanos> {
        let dst_leaf = SwitchId::Leaf(self.topo.rack_of(pkt.dst));
        let leaf = self.topo.trace_host(dst_leaf);
        let limit = match pkt.qos {
            QosClass::Transport => self.cfg.switch_buffer_bytes,
            QosClass::BestEffort => {
                (self.cfg.switch_buffer_bytes as f64 * self.cfg.best_effort_buffer_fraction)
                    as u64
            }
        };
        let switch_latency = self.cfg.switch_latency;
        let schedule = self.topo.spec().schedule;
        let Some(egress_gbps) = self.nics.get(&pkt.dst).map(|n| n.config().gbps) else {
            // Destination host does not exist; treat as routed to a
            // black hole.
            self.stats.switch_drops += 1;
            *self.switch_drops_by.entry((dst_leaf, pkt.qos)).or_insert(0) += 1;
            self.stamp(pkt, Stage::WireDrop, leaf, now);
            return None;
        };
        let port = self
            .egress
            .get_mut(&pkt.dst)
            .expect("nic implies egress port");
        if port.queued_bytes + pkt.wire_size as u64 > limit {
            self.stats.switch_drops += 1;
            *self.switch_drops_by.entry((dst_leaf, pkt.qos)).or_insert(0) += 1;
            self.stamp(pkt, Stage::WireDrop, leaf, now);
            return None;
        }
        port.queued_bytes += pkt.wire_size as u64;
        // A PFC pause storm against the destination holds egress
        // serialization until the storm passes; admitted packets keep
        // occupying the buffer meanwhile, so sustained load during a
        // storm spills into buffer-full drops — the §5.4 pathology.
        let paused = self
            .paused_until
            .get(&pkt.dst)
            .copied()
            .unwrap_or(Nanos::ZERO);
        let earliest = (now + switch_latency).max(paused);
        let ser = transmit_time(pkt.wire_size as u64, egress_gbps) + extra;
        let dep = schedule.depart(port, prio(pkt.qos), earliest, ser);
        self.stamp(pkt, Stage::SwitchDepart, leaf, dep);
        Some(dep)
    }

    /// The legacy single-switch pipeline for in-rack traffic: ingress
    /// faults then egress admission, bit-identical to the pre-topology
    /// `switch_admit` on the degenerate topology.
    fn switch_admit(&mut self, now: Nanos, pkt: &mut Packet) -> Option<Nanos> {
        let pass = self.ingress_admit(now, pkt)?;
        self.local_egress_admit(now, pkt, pass.extra)
    }

    /// Buffer admission + serialization at a directed trunk's egress
    /// port (`from` owns the port). Returns the departure time, or
    /// `None` on a tail drop. Trunk drops count into
    /// [`FabricStats::switch_drops`], attributed to `from`.
    fn trunk_admit(
        &mut self,
        from: SwitchId,
        to: SwitchId,
        now: Nanos,
        pkt: &Packet,
        extra: Nanos,
    ) -> Option<Nanos> {
        let spec = self.topo.spec();
        let limit = match pkt.qos {
            QosClass::Transport => spec.trunk_buffer_bytes,
            QosClass::BestEffort => {
                (spec.trunk_buffer_bytes as f64 * self.cfg.best_effort_buffer_fraction) as u64
            }
        };
        let (schedule, trunk_gbps) = (spec.schedule, spec.trunk_gbps);
        let switch_latency = self.cfg.switch_latency;
        let trace = self.topo.trace_host(from);
        let port = self.trunk_ports.entry((from, to)).or_default();
        if port.queued_bytes + pkt.wire_size as u64 > limit {
            self.stats.switch_drops += 1;
            *self.switch_drops_by.entry((from, pkt.qos)).or_insert(0) += 1;
            self.trunk_stats.entry((from, to)).or_default().drops += 1;
            self.stamp(pkt, Stage::WireDrop, trace, now);
            return None;
        }
        port.queued_bytes += pkt.wire_size as u64;
        let earliest = now + switch_latency;
        let ser = transmit_time(pkt.wire_size as u64, trunk_gbps) + extra;
        let dep = schedule.depart(port, prio(pkt.qos), earliest, ser);
        let stats = self.trunk_stats.entry((from, to)).or_default();
        stats.bytes += pkt.wire_size as u64;
        stats.forwarded += 1;
        self.stamp(pkt, Stage::SwitchDepart, trace, dep);
        Some(dep)
    }

    /// Counts a cross-rack packet dropped for want of any live trunk
    /// path between its leaves.
    fn drop_trunk_down(&mut self, now: Nanos, pkt: &Packet) {
        let leaf = self.topo.trace_host(SwitchId::Leaf(self.topo.rack_of(pkt.src)));
        self.stats.trunk_down_drops += 1;
        self.fault_drops.entry(pkt.dst).or_default().trunk_down += 1;
        self.stamp(pkt, Stage::WireDrop, leaf, now);
    }

    /// Stamps one stage record against the packet's trace context, if
    /// both the context and a recorder are present. Pure observation.
    fn stamp(&self, pkt: &Packet, stage: Stage, host: HostId, at: Nanos) {
        if let (Some(ctx), Some(rec)) = (pkt.trace, self.recorder.as_ref()) {
            rec.record(ctx, stage, host, at);
        }
    }
}

/// Cloneable handle to a shared [`Fabric`]; the public API.
#[derive(Clone)]
pub struct FabricHandle {
    inner: Rc<RefCell<Fabric>>,
}

/// Error returned by [`FabricHandle::transmit`] when the source NIC has
/// no free tx descriptor slot; the packet is handed back so the caller
/// can regenerate it later (just-in-time transmission, §3.1).
#[derive(Debug)]
pub struct TxBusy(pub Packet);

impl FabricHandle {
    /// Creates an empty single-switch fabric — the degenerate
    /// [`ClosSpec::single_rack`] topology every pre-topology experiment
    /// ran on.
    pub fn new(cfg: FabricConfig) -> Self {
        FabricHandle::with_topology(cfg, ClosSpec::single_rack())
    }

    /// Creates an empty fabric over the given Clos topology.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation ([`ClosSpec::compile`]).
    pub fn with_topology(cfg: FabricConfig, spec: ClosSpec) -> Self {
        let topo = spec.compile().expect("invalid topology spec");
        FabricHandle {
            inner: Rc::new(RefCell::new(Fabric::new(cfg, topo))),
        }
    }

    /// The compiled topology this fabric routes through.
    pub fn topology(&self) -> Topology {
        self.inner.borrow().topo.clone()
    }

    /// Fails the bidirectional trunk between a leaf (rack) and a spine:
    /// ECMP stops hashing flows onto it, and packets already committed
    /// to the spine are dropped there. Idempotent.
    pub fn fail_trunk(&self, leaf: u32, spine: u32) {
        self.inner.borrow_mut().down_trunks.insert((leaf, spine));
    }

    /// Restores a failed trunk. Idempotent.
    pub fn restore_trunk(&self, leaf: u32, spine: u32) {
        self.inner.borrow_mut().down_trunks.remove(&(leaf, spine));
    }

    /// True if the leaf↔spine trunk is currently failed.
    pub fn is_trunk_down(&self, leaf: u32, spine: u32) -> bool {
        self.inner.borrow().down_trunks.contains(&(leaf, spine))
    }

    /// Browns out a leaf switch: every packet transiting rack `rack`'s
    /// leaf is dropped with `drop_prob` and survivors pick up `extra`
    /// latency. `drop_prob == 0` heals the leaf. Draws come from the
    /// gray RNG stream, so healthy racks' modeled outcomes are
    /// untouched.
    pub fn set_leaf_brownout(&self, rack: u32, drop_prob: f64, extra: Nanos) {
        let mut fabric = self.inner.borrow_mut();
        if drop_prob > 0.0 || !extra.is_zero() {
            fabric
                .leaf_brownout
                .insert(rack, (drop_prob.clamp(0.0, 1.0), extra));
        } else {
            fabric.leaf_brownout.remove(&rack);
        }
    }

    /// Traffic/drop counters for the directed trunk `from -> to`.
    /// Zeroed stats for a trunk that never carried or dropped a packet.
    pub fn trunk_stats(&self, from: SwitchId, to: SwitchId) -> TrunkStats {
        self.inner
            .borrow()
            .trunk_stats
            .get(&(from, to))
            .copied()
            .unwrap_or_default()
    }

    /// Every directed trunk with any activity, sorted for deterministic
    /// iteration, with its counters.
    pub fn trunks(&self) -> Vec<((SwitchId, SwitchId), TrunkStats)> {
        let fabric = self.inner.borrow();
        let mut out: Vec<_> = fabric.trunk_stats.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// Egress-buffer drops broken down by switch and priority class —
    /// the per-hop attribution of [`FabricStats::switch_drops`]
    /// (entries sum to it). Sorted: leaves first, then spines.
    pub fn switch_drop_breakdown(&self) -> Vec<((SwitchId, QosClass), u64)> {
        self.inner
            .borrow()
            .switch_drops_by
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Adds a host with the given NIC configuration; returns its id.
    pub fn add_host(&self, nic_cfg: NicConfig) -> HostId {
        self.inner.borrow_mut().add_host(nic_cfg)
    }

    /// Number of hosts on the fabric.
    pub fn num_hosts(&self) -> usize {
        self.inner.borrow().nics.len()
    }

    /// Fabric counters snapshot.
    pub fn stats(&self) -> FabricStats {
        self.inner.borrow().stats.clone()
    }

    /// Installs the trace recorder the fabric stamps stage records
    /// into: NIC tx uplink clear, switch arrival/departure, in-flight
    /// drops and corruption, and final NIC delivery. Stamping is pure
    /// observation — modeled time is identical with or without it.
    pub fn set_recorder(&self, recorder: TraceRecorder) {
        self.inner.borrow_mut().recorder = Some(recorder);
    }

    /// Sets the random loss probability (failure injection).
    pub fn set_loss_prob(&self, p: f64) {
        self.inner.borrow_mut().cfg.loss_prob = p.clamp(0.0, 1.0);
    }

    /// Sets the per-packet payload-corruption probability (failure
    /// injection). Corrupted packets carry a stale CRC and are rejected
    /// by the destination NIC's receive path.
    pub fn set_corrupt_prob(&self, p: f64) {
        self.inner.borrow_mut().cfg.corrupt_prob = p.clamp(0.0, 1.0);
    }

    /// Partitions the fabric between `a` and `b`: packets in either
    /// direction are dropped at the switch until [`FabricHandle::heal`].
    /// Idempotent.
    pub fn partition(&self, a: HostId, b: HostId) {
        self.inner.borrow_mut().partitions.insert(norm_pair(a, b));
    }

    /// Heals a partition between `a` and `b`. Idempotent; harmless if
    /// the pair was never partitioned.
    pub fn heal(&self, a: HostId, b: HostId) {
        self.inner.borrow_mut().partitions.remove(&norm_pair(a, b));
    }

    /// Returns true if `a` and `b` are currently partitioned.
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        self.inner.borrow().partitions.contains(&norm_pair(a, b))
    }

    /// Asymmetric partition: drops only packets `from -> to` at the
    /// switch; the reverse direction keeps flowing (a gray failure —
    /// acks arrive, data does not). Idempotent; independent of any
    /// symmetric partition on the same pair.
    pub fn partition_oneway(&self, from: HostId, to: HostId) {
        self.inner.borrow_mut().oneway_partitions.insert((from, to));
    }

    /// Heals a one-way partition `from -> to`. Idempotent.
    pub fn heal_oneway(&self, from: HostId, to: HostId) {
        self.inner.borrow_mut().oneway_partitions.remove(&(from, to));
    }

    /// Returns true if packets `from -> to` are currently dropped by a
    /// one-way partition (does not consider symmetric partitions).
    pub fn is_partitioned_oneway(&self, from: HostId, to: HostId) -> bool {
        self.inner.borrow().oneway_partitions.contains(&(from, to))
    }

    /// Sets (or, with `prob == 0`, heals) a *gray* loss fault on the
    /// directed link `from -> to`: packets are silently dropped with
    /// probability `prob`, with no CRC evidence at the receiver.
    pub fn set_link_loss(&self, from: HostId, to: HostId, prob: f64) {
        let mut fabric = self.inner.borrow_mut();
        if prob > 0.0 {
            fabric.lossy_links.insert((from, to), prob.clamp(0.0, 1.0));
        } else {
            fabric.lossy_links.remove(&(from, to));
        }
    }

    /// Sets (or, with a zero `median`, heals) a jitter fault on the
    /// directed link `from -> to`: each packet picks up a log-normal
    /// extra delay with the given median and sigma.
    pub fn set_link_jitter(&self, from: HostId, to: HostId, median: Nanos, sigma: f64) {
        let mut fabric = self.inner.borrow_mut();
        if median.is_zero() {
            fabric.jitter_links.remove(&(from, to));
        } else {
            fabric.jitter_links.insert((from, to), (median, sigma.max(0.0)));
        }
    }

    /// Injects a PFC pause storm against `host`: the switch stops
    /// serializing toward it until absolute time `until` (§5.4's
    /// pause-frame pathology). Storms extend, never shorten, an
    /// existing pause.
    pub fn pause_host(&self, host: HostId, until: Nanos) {
        let mut fabric = self.inner.borrow_mut();
        let entry = fabric.paused_until.entry(host).or_insert(Nanos::ZERO);
        *entry = (*entry).max(until);
        fabric.stats.pauses += 1;
    }

    /// Quarantines the directed link `from -> to` (a health-detector
    /// verdict): transport traffic reroutes via an alternate path when
    /// one exists (any third host), paying one extra switch hop but
    /// dodging the link's gray faults; best-effort traffic is shed.
    /// Idempotent.
    pub fn quarantine_link(&self, from: HostId, to: HostId) {
        self.inner.borrow_mut().quarantined_links.insert((from, to));
    }

    /// Lifts a quarantine on the directed link `from -> to`. Idempotent.
    pub fn clear_quarantine(&self, from: HostId, to: HostId) {
        self.inner.borrow_mut().quarantined_links.remove(&(from, to));
    }

    /// True if the directed link `from -> to` is quarantined.
    pub fn is_quarantined(&self, from: HostId, to: HostId) -> bool {
        self.inner.borrow().quarantined_links.contains(&(from, to))
    }

    /// Traffic/drop counters for the directed link `from -> to`.
    /// Zeroed stats for a link that never carried or dropped a packet.
    pub fn link_stats(&self, from: HostId, to: HostId) -> LinkStats {
        self.inner
            .borrow()
            .links
            .get(&(from, to))
            .copied()
            .unwrap_or_default()
    }

    /// Every directed link with any activity, sorted (src, dst) for
    /// deterministic iteration, with its counters.
    pub fn links(&self) -> Vec<((HostId, HostId), LinkStats)> {
        let fabric = self.inner.borrow();
        let mut out: Vec<_> = fabric.links.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// Line rate (Gbps) of a host's NIC, if the host exists — the
    /// denominator for link-utilization gauges.
    pub fn host_gbps(&self, host: HostId) -> Option<f64> {
        self.inner.borrow().nics.get(&host).map(|n| n.config().gbps)
    }

    /// Stalls a host's tx queue until absolute time `until` (models a
    /// hung DMA channel): packets transmitted on it during the stall
    /// wait for the stall to lift before serialization starts.
    pub fn stall_queue_until(&self, host: HostId, queue: u16, until: Nanos) {
        let mut fabric = self.inner.borrow_mut();
        let entry = fabric.queue_stalls.entry((host, queue)).or_insert(Nanos::ZERO);
        *entry = (*entry).max(until);
    }

    /// The per-host drop breakdown: switch-side fault drops plus the
    /// destination NIC's own receive-path drop counters.
    pub fn drop_reasons(&self, host: HostId) -> DropReasons {
        let fabric = self.inner.borrow();
        let fault = fabric.fault_drops.get(&host).copied().unwrap_or_default();
        let (crc_bad, no_buffer) = fabric
            .nics
            .get(&host)
            .map(|n| (n.stats().rx_crc_drops, n.stats().rx_overflow_drops))
            .unwrap_or((0, 0));
        DropReasons {
            crc_bad,
            partition: fault.partition,
            corruption: fault.corruption,
            no_buffer,
            lossy: fault.lossy,
            quarantined: fault.quarantined,
            brownout: fault.brownout,
            trunk_down: fault.trunk_down,
        }
    }

    /// Runs `f` with mutable access to a host's NIC.
    ///
    /// # Panics
    ///
    /// Panics if the host does not exist, or if called re-entrantly
    /// from within another fabric borrow.
    pub fn with_nic<R>(&self, host: HostId, f: impl FnOnce(&mut VirtNic) -> R) -> R {
        let mut fabric = self.inner.borrow_mut();
        let nic = fabric.nics.get_mut(&host).expect("unknown host");
        f(nic)
    }

    /// Transmits a packet from its `src` host on the given tx queue.
    ///
    /// Fails with [`TxBusy`] when no tx descriptor slot is free. On
    /// success the packet is fully simulated: uplink serialization,
    /// switch queueing (or drop), egress serialization, delivery into
    /// the destination NIC's rx ring, and interrupt delivery if armed.
    pub fn transmit(&self, sim: &mut Sim, queue: u16, pkt: Packet) -> Result<(), TxBusy> {
        let (depart_uplink, src, wire) = {
            let mut fabric = self.inner.borrow_mut();
            let src = pkt.src;
            let nic = fabric.nics.get_mut(&src).expect("unknown source host");
            if !nic.take_tx_slot(queue) {
                return Err(TxBusy(pkt));
            }
            let gbps = nic.config().gbps;
            let wire = pkt.wire_size;
            // Tx-side DMA: descriptor fetch + payload read from host
            // memory before bits hit the wire.
            let dma_ready = sim.now() + fabric.cfg.nic_dma;
            // A stalled queue holds its packets until the stall lifts,
            // but does not occupy the shared uplink while waiting —
            // other queues' traffic flows around the hung queue.
            let stall = fabric
                .queue_stalls
                .get(&(src, queue))
                .copied()
                .filter(|&until| until > sim.now())
                .unwrap_or(Nanos::ZERO);
            let ser = transmit_time(wire as u64, gbps);
            let busy = fabric.uplink_busy.get_mut(&src).expect("uplink exists");
            let start = (*busy).max(dma_ready);
            let end = start + ser;
            *busy = end;
            let depart = end.max(stall + ser);
            fabric.stamp(&pkt, Stage::NicTx, src, depart);
            (depart, src, wire)
        };

        // Tx descriptor completes when serialization finishes.
        let handle = self.clone();
        sim.schedule_at(depart_uplink, move |sim| {
            handle.with_nic(src, |nic| nic.complete_tx(queue, wire));
            handle.arrive_at_switch(sim, pkt);
        });
        Ok(())
    }

    /// Packet reaches the source leaf ingress; apply loss, buffer and
    /// egress-port serialization, then forward toward the destination.
    /// Cross-rack packets ride the train pipeline as a one-packet train
    /// (timing-identical — pinned by the burst-of-one test).
    fn arrive_at_switch(&self, sim: &mut Sim, pkt: Packet) {
        let cross = {
            let fabric = self.inner.borrow();
            !fabric.topo.same_rack(pkt.src, pkt.dst)
        };
        if cross {
            self.arrive_at_switch_burst(sim, vec![pkt]);
            return;
        }
        let ingress = sim.now() + self.inner.borrow().cfg.prop_delay;
        let handle = self.clone();
        sim.schedule_at(ingress, move |sim| {
            let mut pkt = pkt;
            let departure = {
                let mut fabric = handle.inner.borrow_mut();
                let now = sim.now();
                match fabric.switch_admit(now, &mut pkt) {
                    Some(dep) => dep,
                    None => return,
                }
            };
            let handle2 = handle.clone();
            sim.schedule_at(departure, move |sim| {
                {
                    let mut fabric = handle2.inner.borrow_mut();
                    if let Some(port) = fabric.egress.get_mut(&pkt.dst) {
                        port.queued_bytes -= pkt.wire_size as u64;
                    }
                }
                handle2.deliver(sim, pkt);
            });
        });
    }

    /// Transmits a packet train from one host on one tx queue,
    /// coalescing fixed simulation work: ONE scheduled event covers the
    /// whole train at each hop (uplink completion, switch ingress, and
    /// one egress departure + delivery per destination sub-train), and
    /// the receiving NIC raises at most one interrupt per rx queue per
    /// burst. Per-packet *semantics* are unchanged: tx descriptor
    /// slots, uplink serialization occupancy, random loss, partitions,
    /// corruption and egress buffer admission are all applied packet by
    /// packet in train order, through the same code as [`Self::transmit`].
    ///
    /// Packets are accepted until tx slots run out; the accepted count
    /// is returned and unaccepted packets stay in `pkts`
    /// (front-aligned), for the caller to regenerate later.
    ///
    /// The whole train becomes visible at the switch when its *last*
    /// packet finishes uplink serialization (and at the destination
    /// when its sub-train finishes egress serialization), so a packet's
    /// arrival can shift later by at most one train serialization time
    /// relative to per-packet transmission — bound the train with
    /// [`costs::FABRIC_BURST_MAX`].
    ///
    /// # Panics
    ///
    /// Panics if the packets do not all share the same source host, or
    /// if that host does not exist.
    pub fn transmit_burst(&self, sim: &mut Sim, queue: u16, pkts: &mut Vec<Packet>) -> usize {
        let Some(first) = pkts.first() else { return 0 };
        let src = first.src;
        let (depart_uplink, accepted) = {
            let mut fabric = self.inner.borrow_mut();
            let dma_ready = sim.now() + fabric.cfg.nic_dma;
            let stall = fabric
                .queue_stalls
                .get(&(src, queue))
                .copied()
                .filter(|&until| until > sim.now())
                .unwrap_or(Nanos::ZERO);
            let nic = fabric.nics.get_mut(&src).expect("unknown source host");
            let gbps = nic.config().gbps;
            let mut taken = 0;
            for pkt in pkts.iter() {
                assert_eq!(pkt.src, src, "burst mixes source hosts");
                if !nic.take_tx_slot(queue) {
                    break;
                }
                taken += 1;
            }
            let mut busy = *fabric.uplink_busy.get(&src).expect("uplink exists");
            let mut depart = Nanos::ZERO;
            for pkt in &pkts[..taken] {
                let ser = transmit_time(pkt.wire_size as u64, gbps);
                let start = busy.max(dma_ready);
                let end = start + ser;
                busy = end;
                // Each packet clears the uplink at its own serialization
                // end, even though one event forwards the whole train.
                fabric.stamp(pkt, Stage::NicTx, src, end.max(stall + ser));
                depart = depart.max(end.max(stall + ser));
            }
            *fabric.uplink_busy.get_mut(&src).expect("uplink exists") = busy;
            (depart, pkts.drain(..taken).collect::<Vec<Packet>>())
        };
        let n = accepted.len();
        if n == 0 {
            return 0;
        }
        // One event retires every tx descriptor and forwards the train
        // when the last packet clears the uplink.
        let handle = self.clone();
        sim.schedule_at(depart_uplink, move |sim| {
            handle.with_nic(src, |nic| {
                for pkt in &accepted {
                    nic.complete_tx(queue, pkt.wire_size);
                }
            });
            handle.arrive_at_switch_burst(sim, accepted);
        });
        n
    }

    /// Train reaches the source leaf ingress: run the per-packet
    /// pipeline on every packet (in order). In-rack survivors go
    /// straight to the leaf's host-facing egress, exactly as the legacy
    /// single-switch code did; cross-rack survivors pick an ECMP spine
    /// and queue on the leaf→spine trunk port. One departure event is
    /// scheduled per destination sub-train (in-rack) and per spine
    /// sub-train (cross-rack), at that sub-train's last egress
    /// departure.
    fn arrive_at_switch_burst(&self, sim: &mut Sim, pkts: Vec<Packet>) {
        let ingress = sim.now() + self.inner.borrow().cfg.prop_delay;
        let handle = self.clone();
        sim.schedule_at(ingress, move |sim| {
            // (dst, sub-train departure, sub-train packets), in
            // first-packet order per destination.
            let mut trains: Vec<(HostId, Nanos, Vec<Packet>)> = Vec::new();
            // (spine, sub-train departure, packets) for cross-rack.
            let mut uplinks: Vec<(u32, Nanos, Vec<Packet>)> = Vec::new();
            let mut src_rack = 0;
            {
                let mut fabric = handle.inner.borrow_mut();
                let now = sim.now();
                for mut pkt in pkts {
                    let Some(pass) = fabric.ingress_admit(now, &mut pkt) else {
                        continue;
                    };
                    if fabric.topo.same_rack(pkt.src, pkt.dst) {
                        let Some(dep) = fabric.local_egress_admit(now, &pkt, pass.extra) else {
                            continue;
                        };
                        match trains.iter_mut().find(|(dst, ..)| *dst == pkt.dst) {
                            Some((_, train_dep, train)) => {
                                *train_dep = (*train_dep).max(dep);
                                train.push(pkt);
                            }
                            None => trains.push((pkt.dst, dep, vec![pkt])),
                        }
                        continue;
                    }
                    // Cross-rack: deterministic ECMP spine pick. A
                    // reroute verdict re-hashes with a salt to land on
                    // a different equal-cost spine.
                    src_rack = fabric.topo.rack_of(pkt.src);
                    let salt = u64::from(pass.rerouted);
                    let spine = {
                        let down = &fabric.down_trunks;
                        fabric.topo.ecmp_spine(pkt.src, pkt.dst, pkt.rss_hash, salt, |l, s| {
                            down.contains(&(l, s))
                        })
                    };
                    let Some(spine) = spine else {
                        fabric.drop_trunk_down(now, &pkt);
                        continue;
                    };
                    let from = SwitchId::Leaf(src_rack);
                    let to = SwitchId::Spine(spine);
                    let Some(dep) = fabric.trunk_admit(from, to, now, &pkt, pass.extra) else {
                        continue;
                    };
                    match uplinks.iter_mut().find(|(s, ..)| *s == spine) {
                        Some((_, train_dep, train)) => {
                            *train_dep = (*train_dep).max(dep);
                            train.push(pkt);
                        }
                        None => uplinks.push((spine, dep, vec![pkt])),
                    }
                }
            }
            for (dst, departure, train) in trains {
                let handle2 = handle.clone();
                sim.schedule_at(departure, move |sim| {
                    {
                        let mut fabric = handle2.inner.borrow_mut();
                        if let Some(port) = fabric.egress.get_mut(&dst) {
                            for pkt in &train {
                                port.queued_bytes -= pkt.wire_size as u64;
                            }
                        }
                    }
                    handle2.deliver_train(sim, train);
                });
            }
            for (spine, departure, train) in uplinks {
                let handle2 = handle.clone();
                sim.schedule_at(departure, move |sim| {
                    {
                        let mut fabric = handle2.inner.borrow_mut();
                        let key = (SwitchId::Leaf(src_rack), SwitchId::Spine(spine));
                        if let Some(port) = fabric.trunk_ports.get_mut(&key) {
                            for pkt in &train {
                                port.queued_bytes -= pkt.wire_size as u64;
                            }
                        }
                    }
                    handle2.arrive_at_spine(sim, spine, train);
                });
            }
        });
    }

    /// Cross-rack train reaches a spine after trunk propagation: pay
    /// the spine's forwarding latency via admission onto the
    /// spine→destination-leaf trunk port, grouped per destination rack.
    /// A trunk that failed after the flow committed to this spine drops
    /// the packets here.
    fn arrive_at_spine(&self, sim: &mut Sim, spine: u32, pkts: Vec<Packet>) {
        let at = sim.now() + self.inner.borrow().topo.spec().trunk_prop;
        let handle = self.clone();
        sim.schedule_at(at, move |sim| {
            // (dst rack, sub-train departure, packets).
            let mut downlinks: Vec<(u32, Nanos, Vec<Packet>)> = Vec::new();
            {
                let mut fabric = handle.inner.borrow_mut();
                let now = sim.now();
                let from = SwitchId::Spine(spine);
                let trace = fabric.topo.trace_host(from);
                for pkt in pkts {
                    fabric.stamp(&pkt, Stage::SwitchArrive, trace, now);
                    let rack = fabric.topo.rack_of(pkt.dst);
                    if fabric.down_trunks.contains(&(rack, spine)) {
                        fabric.drop_trunk_down(now, &pkt);
                        continue;
                    }
                    let Some(dep) =
                        fabric.trunk_admit(from, SwitchId::Leaf(rack), now, &pkt, Nanos::ZERO)
                    else {
                        continue;
                    };
                    match downlinks.iter_mut().find(|(r, ..)| *r == rack) {
                        Some((_, train_dep, train)) => {
                            *train_dep = (*train_dep).max(dep);
                            train.push(pkt);
                        }
                        None => downlinks.push((rack, dep, vec![pkt])),
                    }
                }
            }
            for (rack, departure, train) in downlinks {
                let handle2 = handle.clone();
                sim.schedule_at(departure, move |sim| {
                    {
                        let mut fabric = handle2.inner.borrow_mut();
                        let key = (SwitchId::Spine(spine), SwitchId::Leaf(rack));
                        if let Some(port) = fabric.trunk_ports.get_mut(&key) {
                            for pkt in &train {
                                port.queued_bytes -= pkt.wire_size as u64;
                            }
                        }
                    }
                    handle2.arrive_at_dst_leaf(sim, rack, train);
                });
            }
        });
    }

    /// Cross-rack train reaches the destination leaf after trunk
    /// propagation: leaf brownout check, then the same host-facing
    /// egress admission in-rack traffic gets, grouped per destination
    /// host.
    fn arrive_at_dst_leaf(&self, sim: &mut Sim, rack: u32, pkts: Vec<Packet>) {
        let at = sim.now() + self.inner.borrow().topo.spec().trunk_prop;
        let handle = self.clone();
        sim.schedule_at(at, move |sim| {
            let mut trains: Vec<(HostId, Nanos, Vec<Packet>)> = Vec::new();
            {
                let mut fabric = handle.inner.borrow_mut();
                let now = sim.now();
                let trace = fabric.topo.trace_host(SwitchId::Leaf(rack));
                for pkt in pkts {
                    fabric.stamp(&pkt, Stage::SwitchArrive, trace, now);
                    let mut extra = Nanos::ZERO;
                    if let Some(&(drop_prob, bo_extra)) = fabric.leaf_brownout.get(&rack) {
                        if fabric.gray_rng.chance(drop_prob) {
                            fabric.stats.brownout_drops += 1;
                            fabric.fault_drops.entry(pkt.dst).or_default().brownout += 1;
                            fabric.stamp(&pkt, Stage::WireDrop, trace, now);
                            continue;
                        }
                        extra = bo_extra;
                    }
                    let Some(dep) = fabric.local_egress_admit(now, &pkt, extra) else {
                        continue;
                    };
                    match trains.iter_mut().find(|(dst, ..)| *dst == pkt.dst) {
                        Some((_, train_dep, train)) => {
                            *train_dep = (*train_dep).max(dep);
                            train.push(pkt);
                        }
                        None => trains.push((pkt.dst, dep, vec![pkt])),
                    }
                }
            }
            for (dst, departure, train) in trains {
                let handle2 = handle.clone();
                sim.schedule_at(departure, move |sim| {
                    {
                        let mut fabric = handle2.inner.borrow_mut();
                        if let Some(port) = fabric.egress.get_mut(&dst) {
                            for pkt in &train {
                                port.queued_bytes -= pkt.wire_size as u64;
                            }
                        }
                    }
                    handle2.deliver_train(sim, train);
                });
            }
        });
    }

    /// Final hop for a sub-train: propagation + rx DMA, then the whole
    /// train into the destination NIC's rx rings in one event, with at
    /// most one interrupt per armed rx queue.
    fn deliver_train(&self, sim: &mut Sim, pkts: Vec<Packet>) {
        let (prop, dma) = {
            let fabric = self.inner.borrow();
            (fabric.cfg.prop_delay, fabric.cfg.nic_dma)
        };
        let handle = self.clone();
        sim.schedule_at(sim.now() + prop + dma, move |sim| {
            let (irqs, handler) = {
                let mut fabric = handle.inner.borrow_mut();
                let Some(dst) = pkts.first().map(|p| p.dst) else {
                    return;
                };
                let n = pkts.len() as u64;
                if fabric.nics.contains_key(&dst) {
                    let now = sim.now();
                    for pkt in &pkts {
                        let link = fabric.links.entry((pkt.src, pkt.dst)).or_default();
                        link.bytes += pkt.wire_size as u64;
                        link.delivered += 1;
                        fabric.stamp(pkt, Stage::NicDeliver, pkt.dst, now);
                    }
                }
                let Some(nic) = fabric.nics.get_mut(&dst) else {
                    return;
                };
                let irqs = nic.deliver_burst(pkts);
                let handler = nic.irq_handler();
                // Counted per packet reaching the NIC, as the
                // per-packet path does (NIC-side drops have their own
                // counters).
                fabric.stats.delivered += n;
                (irqs, handler)
            };
            // Invoke interrupts outside the fabric borrow so handlers
            // can freely poll the NIC.
            if let Some(handler) = handler {
                for queue in irqs {
                    handler(sim, queue);
                }
            }
        });
    }

    /// Final hop: propagation + rx DMA, then into the NIC rx ring.
    fn deliver(&self, sim: &mut Sim, pkt: Packet) {
        let (prop, dma) = {
            let fabric = self.inner.borrow();
            (fabric.cfg.prop_delay, fabric.cfg.nic_dma)
        };
        let handle = self.clone();
        sim.schedule_at(sim.now() + prop + dma, move |sim| {
            let (irq, handler) = {
                let mut fabric = handle.inner.borrow_mut();
                let dst = pkt.dst;
                if !fabric.nics.contains_key(&dst) {
                    return;
                }
                let link = fabric.links.entry((pkt.src, pkt.dst)).or_default();
                link.bytes += pkt.wire_size as u64;
                link.delivered += 1;
                fabric.stamp(&pkt, Stage::NicDeliver, dst, sim.now());
                let Some(nic) = fabric.nics.get_mut(&dst) else {
                    return;
                };
                let irq = nic.deliver(pkt);
                let handler = nic.irq_handler();
                if irq.is_some() {
                    fabric.stats.delivered += 1;
                } else {
                    // Delivery without interrupt still counts if the
                    // packet landed in a ring (check stats delta is
                    // overkill; deliver() already counted drops).
                    fabric.stats.delivered += 1;
                }
                (irq, handler)
            };
            // Invoke the interrupt outside the fabric borrow so the
            // handler can freely poll the NIC.
            if let (Some(queue), Some(handler)) = (irq, handler) {
                handler(sim, queue);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::cell::Cell;

    fn two_hosts(loss: f64) -> (FabricHandle, HostId, HostId) {
        let fabric = FabricHandle::new(FabricConfig {
            loss_prob: loss,
            ..FabricConfig::default()
        });
        let a = fabric.add_host(NicConfig::default());
        let b = fabric.add_host(NicConfig::default());
        (fabric, a, b)
    }

    fn packet(src: HostId, dst: HostId, len: usize) -> Packet {
        Packet::new(src, dst, Bytes::from(vec![7u8; len]))
    }

    #[test]
    fn end_to_end_delivery() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        fabric.transmit(&mut sim, 0, packet(a, b, 1000)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 1);
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 1);
        // Sanity on the latency: serialization (~167ns at 50G) + hops.
        let t = sim.now().as_nanos();
        assert!(t > 2_000 && t < 10_000, "delivery took {t}ns");
    }

    #[test]
    fn tx_slots_backpressure_and_recover() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let a = fabric.add_host(NicConfig {
            tx_queue_depth: 2,
            ..NicConfig::default()
        });
        let b = fabric.add_host(NicConfig::default());
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        let third = fabric.transmit(&mut sim, 0, packet(a, b, 100));
        assert!(third.is_err(), "slots exhausted");
        sim.run();
        // Slots returned after serialization.
        assert_eq!(fabric.with_nic(a, |n| n.tx_slots_available(0)), 2);
        let TxBusy(pkt) = third.unwrap_err();
        fabric.transmit(&mut sim, 0, pkt).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 3);
    }

    #[test]
    fn random_loss_drops_packets() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(1.0);
        for _ in 0..10 {
            fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
            sim.run();
        }
        assert_eq!(fabric.stats().random_drops, 10);
        assert_eq!(fabric.stats().delivered, 0);
    }

    #[test]
    fn partial_loss_statistics() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.3);
        for _ in 0..1000 {
            fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
            sim.run();
        }
        let s = fabric.stats();
        assert_eq!(s.delivered + s.random_drops, 1000);
        assert!(
            (250..350).contains(&(s.random_drops as i64)),
            "drops {} not near 30%",
            s.random_drops
        );
    }

    #[test]
    fn switch_buffer_tail_drops_under_burst() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig {
            switch_buffer_bytes: 10_000,
            ..FabricConfig::default()
        });
        let a = fabric.add_host(NicConfig {
            tx_queue_depth: 4096,
            gbps: 1000.0, // firehose ingress
            ..NicConfig::default()
        });
        let b = fabric.add_host(NicConfig {
            gbps: 1.0, // slow egress: builds the backlog
            ..NicConfig::default()
        });
        for _ in 0..200 {
            fabric.transmit(&mut sim, 0, packet(a, b, 1000)).unwrap();
        }
        sim.run();
        let s = fabric.stats();
        assert!(s.switch_drops > 0, "no drops despite tiny buffer");
        assert_eq!(s.delivered + s.switch_drops, 200);
    }

    #[test]
    fn interrupt_fires_on_armed_queue() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        let fired = Rc::new(Cell::new(0u32));
        let f2 = fired.clone();
        fabric.with_nic(b, |nic| {
            nic.set_irq_handler(Rc::new(move |_sim, _q| f2.set(f2.get() + 1)));
            nic.arm_irq(0, true);
        });
        let p = packet(a, b, 64).with_rss_hash(0);
        fabric.transmit(&mut sim, 0, p).unwrap();
        sim.run();
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn serialization_orders_same_link_packets() {
        // Two packets on the same uplink serialize back-to-back; the
        // second arrives strictly later.
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let arr = arrivals.clone();
        fabric.with_nic(b, |nic| {
            nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| {
                arr.borrow_mut().push(sim.now());
            }));
            nic.arm_irq(0, true);
        });
        let big = packet(a, b, 100_000); // ~16us at 50G
        let small = packet(a, b, 100).with_rss_hash(0);
        fabric.transmit(&mut sim, 0, big.with_rss_hash(0)).unwrap();
        fabric.transmit(&mut sim, 0, small).unwrap();
        sim.run();
        let arrivals = arrivals.borrow();
        assert_eq!(arrivals.len(), 2);
        let gap = (arrivals[1] - arrivals[0]).as_nanos();
        // The small packet waited behind the big one's serialization.
        assert!(gap < 1_000, "FIFO egress should deliver close together, gap {gap}ns");
        assert!(arrivals[0].as_nanos() > 16_000, "big packet serialization time");
    }

    #[test]
    fn partition_drops_until_healed() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        fabric.partition(a, b);
        assert!(fabric.is_partitioned(a, b));
        assert!(fabric.is_partitioned(b, a), "partitions are symmetric");
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        fabric.transmit(&mut sim, 0, packet(b, a, 100)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().partition_drops, 2);
        assert_eq!(fabric.stats().delivered, 0);
        assert_eq!(fabric.drop_reasons(a).partition, 1);
        assert_eq!(fabric.drop_reasons(b).partition, 1);
        fabric.heal(a, b);
        assert!(!fabric.is_partitioned(a, b));
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 1);
    }

    #[test]
    fn oneway_partition_drops_only_one_direction() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        fabric.partition_oneway(a, b);
        assert!(fabric.is_partitioned_oneway(a, b));
        assert!(!fabric.is_partitioned_oneway(b, a), "one-way is directed");
        assert!(!fabric.is_partitioned(a, b), "not a symmetric partition");
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        fabric.transmit(&mut sim, 0, packet(b, a, 100)).unwrap();
        sim.run();
        // a -> b dead, b -> a alive.
        assert_eq!(fabric.stats().partition_drops, 1);
        assert_eq!(fabric.stats().delivered, 1);
        assert_eq!(fabric.with_nic(a, |n| n.rx_pending_total()), 1);
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 0);
        // The drop is attributed to the directed link a -> b only.
        assert_eq!(fabric.link_stats(a, b).partition_drops, 1);
        assert_eq!(fabric.link_stats(b, a).partition_drops, 0);
        assert_eq!(fabric.link_stats(b, a).delivered, 1);
        fabric.heal_oneway(a, b);
        fabric.transmit(&mut sim, 0, packet(a, b, 100)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 2);
        assert_eq!(fabric.link_stats(a, b).delivered, 1);
    }

    #[test]
    fn link_stats_track_directed_traffic() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        for _ in 0..3 {
            fabric.transmit(&mut sim, 0, packet(a, b, 1000)).unwrap();
        }
        fabric.transmit(&mut sim, 0, packet(b, a, 500)).unwrap();
        sim.run();
        let ab = fabric.link_stats(a, b);
        let ba = fabric.link_stats(b, a);
        assert_eq!(ab.delivered, 3);
        assert_eq!(ba.delivered, 1);
        assert!(ab.bytes >= 3000, "wire bytes include headers: {}", ab.bytes);
        assert!(ba.bytes >= 500 && ba.bytes < ab.bytes);
        let links = fabric.links();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].0, (a, b), "links sorted by (src, dst)");
        assert!(fabric.host_gbps(a).is_some());
        assert!(fabric.host_gbps(999).is_none());
    }

    #[test]
    fn corruption_is_rejected_by_receive_crc() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig {
            corrupt_prob: 1.0,
            ..FabricConfig::default()
        });
        let a = fabric.add_host(NicConfig::default());
        let b = fabric.add_host(NicConfig::default());
        for _ in 0..10 {
            fabric.transmit(&mut sim, 0, packet(a, b, 500)).unwrap();
        }
        sim.run();
        assert_eq!(fabric.stats().corrupted, 10);
        // Every corrupted packet reached the NIC and was CRC-rejected.
        assert_eq!(fabric.with_nic(b, |n| n.stats().rx_crc_drops), 10);
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 0);
        let reasons = fabric.drop_reasons(b);
        assert_eq!(reasons.crc_bad, 10);
        assert_eq!(reasons.corruption, 10);
        assert_eq!(reasons.total(), 20);
        // Turning corruption off restores clean delivery.
        fabric.set_corrupt_prob(0.0);
        fabric.transmit(&mut sim, 0, packet(a, b, 500)).unwrap();
        sim.run();
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 1);
    }

    #[test]
    fn stalled_queue_delays_transmission() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        let stall_until = Nanos::from_micros(500);
        fabric.stall_queue_until(a, 0, stall_until);
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let arr = arrivals.clone();
        fabric.with_nic(b, |nic| {
            nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| {
                arr.borrow_mut().push(sim.now());
            }));
            nic.arm_irq(0, true);
            nic.arm_irq(1, true);
        });
        // Queue 0 is stalled; queue 1 is not.
        fabric.transmit(&mut sim, 0, packet(a, b, 100).with_rss_hash(0)).unwrap();
        fabric.transmit(&mut sim, 1, packet(a, b, 100).with_rss_hash(1)).unwrap();
        sim.run();
        let arrivals = arrivals.borrow();
        assert_eq!(arrivals.len(), 2);
        let (fast, slow) = (arrivals[0], arrivals[1]);
        assert!(fast < stall_until, "unstalled queue delivered promptly at {fast}");
        assert!(slow > stall_until, "stalled queue held until {stall_until}, got {slow}");
    }

    #[test]
    fn burst_delivers_with_one_irq() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        let fired = Rc::new(Cell::new(0u32));
        let f2 = fired.clone();
        fabric.with_nic(b, |nic| {
            nic.set_irq_handler(Rc::new(move |_sim, _q| f2.set(f2.get() + 1)));
            nic.arm_irq(0, true);
        });
        let mut train: Vec<Packet> =
            (0..8).map(|_| packet(a, b, 500).with_rss_hash(0)).collect();
        assert_eq!(fabric.transmit_burst(&mut sim, 0, &mut train), 8);
        assert!(train.is_empty());
        sim.run();
        assert_eq!(fabric.stats().delivered, 8);
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 8);
        assert_eq!(fired.get(), 1, "one interrupt for the whole train");
    }

    #[test]
    fn burst_respects_tx_slots_and_returns_leftovers() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let a = fabric.add_host(NicConfig {
            tx_queue_depth: 4,
            ..NicConfig::default()
        });
        let b = fabric.add_host(NicConfig::default());
        let mut train: Vec<Packet> = (0..6).map(|_| packet(a, b, 100)).collect();
        assert_eq!(fabric.transmit_burst(&mut sim, 0, &mut train), 4);
        assert_eq!(train.len(), 2, "unaccepted packets handed back");
        sim.run();
        assert_eq!(fabric.stats().delivered, 4);
        assert_eq!(fabric.with_nic(a, |n| n.tx_slots_available(0)), 4);
    }

    #[test]
    fn burst_applies_faults_per_packet() {
        // Corruption at probability 1 must hit every packet of a train
        // individually, and each one must be CRC-rejected by the NIC.
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig {
            corrupt_prob: 1.0,
            ..FabricConfig::default()
        });
        let a = fabric.add_host(NicConfig::default());
        let b = fabric.add_host(NicConfig::default());
        let mut train: Vec<Packet> = (0..10).map(|_| packet(a, b, 500)).collect();
        assert_eq!(fabric.transmit_burst(&mut sim, 0, &mut train), 10);
        sim.run();
        assert_eq!(fabric.stats().corrupted, 10);
        assert_eq!(fabric.with_nic(b, |n| n.stats().rx_crc_drops), 10);
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 0);
        // Partition mid-experiment: a fresh train is dropped per packet
        // at the switch, not as a unit that might bypass counters.
        fabric.set_corrupt_prob(0.0);
        fabric.partition(a, b);
        let mut train: Vec<Packet> = (0..5).map(|_| packet(a, b, 100)).collect();
        fabric.transmit_burst(&mut sim, 0, &mut train);
        sim.run();
        assert_eq!(fabric.stats().partition_drops, 5);
        assert_eq!(fabric.drop_reasons(b).partition, 5);
    }

    #[test]
    fn burst_splits_per_destination() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let a = fabric.add_host(NicConfig::default());
        let b = fabric.add_host(NicConfig::default());
        let c = fabric.add_host(NicConfig::default());
        let mut train = vec![
            packet(a, b, 200),
            packet(a, c, 200),
            packet(a, b, 200),
            packet(a, c, 200),
        ];
        assert_eq!(fabric.transmit_burst(&mut sim, 0, &mut train), 4);
        sim.run();
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 2);
        assert_eq!(fabric.with_nic(c, |n| n.rx_pending_total()), 2);
        assert_eq!(fabric.stats().delivered, 4);
    }

    #[test]
    fn burst_of_one_matches_single_transmit_timing() {
        // A burst of one packet must arrive at exactly the same virtual
        // time as the same packet sent through `transmit`.
        let t_single = {
            let mut sim = Sim::new();
            let (fabric, a, b) = two_hosts(0.0);
            let at = Rc::new(Cell::new(Nanos::ZERO));
            let at2 = at.clone();
            fabric.with_nic(b, |nic| {
                nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| at2.set(sim.now())));
                nic.arm_irq(0, true);
            });
            fabric
                .transmit(&mut sim, 0, packet(a, b, 1000).with_rss_hash(0))
                .unwrap();
            sim.run();
            at.get()
        };
        let t_burst = {
            let mut sim = Sim::new();
            let (fabric, a, b) = two_hosts(0.0);
            let at = Rc::new(Cell::new(Nanos::ZERO));
            let at2 = at.clone();
            fabric.with_nic(b, |nic| {
                nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| at2.set(sim.now())));
                nic.arm_irq(0, true);
            });
            let mut train = vec![packet(a, b, 1000).with_rss_hash(0)];
            fabric.transmit_burst(&mut sim, 0, &mut train);
            sim.run();
            at.get()
        };
        assert!(t_single > Nanos::ZERO);
        assert_eq!(t_single, t_burst);
    }

    #[test]
    fn lossy_link_drops_silently_and_attributes() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        fabric.set_link_loss(a, b, 1.0);
        for _ in 0..10 {
            fabric.transmit(&mut sim, 0, packet(a, b, 500)).unwrap();
        }
        // The reverse direction is unaffected: gray loss is directed.
        fabric.transmit(&mut sim, 0, packet(b, a, 500)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().lossy_drops, 10);
        assert_eq!(fabric.stats().delivered, 1);
        assert_eq!(fabric.link_stats(a, b).lossy_drops, 10);
        assert_eq!(fabric.link_stats(b, a).lossy_drops, 0);
        // Silent: no CRC evidence at the receiver, unlike corruption.
        assert_eq!(fabric.with_nic(b, |n| n.stats().rx_crc_drops), 0);
        let dr = fabric.drop_reasons(b);
        assert_eq!(dr.lossy, 10);
        assert!(dr.total() >= 10);
        // Healing restores delivery.
        fabric.set_link_loss(a, b, 0.0);
        fabric.transmit(&mut sim, 0, packet(a, b, 500)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 2);
    }

    #[test]
    fn jittery_link_delays_but_delivers() {
        let delivery_at = |jitter: Option<(Nanos, f64)>| {
            let mut sim = Sim::new();
            let (fabric, a, b) = two_hosts(0.0);
            if let Some((median, sigma)) = jitter {
                fabric.set_link_jitter(a, b, median, sigma);
            }
            let at = Rc::new(Cell::new(Nanos::ZERO));
            let at2 = at.clone();
            fabric.with_nic(b, |nic| {
                nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| at2.set(sim.now())));
                nic.arm_irq(0, true);
            });
            fabric.transmit(&mut sim, 0, packet(a, b, 1000).with_rss_hash(0)).unwrap();
            sim.run();
            (at.get(), fabric.link_stats(a, b))
        };
        let (clean, clean_link) = delivery_at(None);
        let (jittered, link) = delivery_at(Some((Nanos::from_micros(50), 0.5)));
        assert!(clean > Nanos::ZERO && jittered > clean, "{clean} vs {jittered}");
        assert_eq!(link.jittered, 1);
        assert!(link.jitter_ns > 0);
        assert_eq!(link.delivered, 1, "jitter delays, never drops");
        assert_eq!(clean_link.jittered, 0);
    }

    #[test]
    fn healthy_runs_are_identical_with_gray_machinery_on_other_links() {
        // A gray fault on an unrelated link must not perturb this
        // link's modeled outcome: separate RNG stream, per-link draw.
        let run = |poison_other: bool| {
            let mut sim = Sim::new();
            let fabric = FabricHandle::new(FabricConfig {
                loss_prob: 0.2,
                ..FabricConfig::default()
            });
            let a = fabric.add_host(NicConfig::default());
            let b = fabric.add_host(NicConfig::default());
            let c = fabric.add_host(NicConfig::default());
            if poison_other {
                fabric.set_link_loss(a, c, 0.9);
                fabric.set_link_jitter(c, a, Nanos::from_micros(100), 1.0);
            }
            for _ in 0..200 {
                fabric.transmit(&mut sim, 0, packet(a, b, 400)).unwrap();
                sim.run();
            }
            (fabric.stats().delivered, fabric.stats().random_drops, sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn pause_storm_holds_egress_then_releases() {
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        let storm_end = Nanos::from_micros(300);
        fabric.pause_host(b, storm_end);
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let arr = arrivals.clone();
        fabric.with_nic(b, |nic| {
            nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| {
                arr.borrow_mut().push(sim.now());
            }));
            nic.arm_irq(0, true);
        });
        fabric.transmit(&mut sim, 0, packet(a, b, 100).with_rss_hash(0)).unwrap();
        sim.run();
        // Held at the switch through the storm, delivered right after.
        let arrivals = arrivals.borrow();
        assert_eq!(arrivals.len(), 1);
        assert!(arrivals[0] > storm_end, "held past the storm: {}", arrivals[0]);
        assert!(
            arrivals[0] < storm_end + Nanos::from_micros(50),
            "released promptly: {}",
            arrivals[0]
        );
        assert_eq!(fabric.stats().pauses, 1);
    }

    #[test]
    fn pause_storm_under_load_spills_into_buffer_drops() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig {
            switch_buffer_bytes: 20_000,
            ..FabricConfig::default()
        });
        let a = fabric.add_host(NicConfig {
            tx_queue_depth: 4096,
            ..NicConfig::default()
        });
        let b = fabric.add_host(NicConfig::default());
        fabric.pause_host(b, Nanos::from_millis(5));
        for _ in 0..100 {
            fabric.transmit(&mut sim, 0, packet(a, b, 1000)).unwrap();
        }
        sim.run();
        let s = fabric.stats();
        assert!(s.switch_drops > 0, "storm backlog must spill: {s:?}");
        assert_eq!(s.delivered + s.switch_drops, 100);
    }

    #[test]
    fn quarantined_link_sheds_best_effort_and_reroutes_transport() {
        // Three hosts: an alternate path exists, so transport traffic
        // on the quarantined link reroutes (dodging its gray loss) at
        // the cost of an extra hop; best-effort is shed.
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let a = fabric.add_host(NicConfig::default());
        let b = fabric.add_host(NicConfig::default());
        let _c = fabric.add_host(NicConfig::default());
        fabric.set_link_loss(a, b, 1.0);
        fabric.quarantine_link(a, b);
        assert!(fabric.is_quarantined(a, b));
        for _ in 0..5 {
            let p = packet(a, b, 500).with_qos(QosClass::Transport);
            fabric.transmit(&mut sim, 0, p).unwrap();
        }
        let be = packet(a, b, 500).with_qos(QosClass::BestEffort);
        fabric.transmit(&mut sim, 0, be).unwrap();
        sim.run();
        let s = fabric.stats();
        // Transport rerouted around the 100%-lossy link — delivered.
        assert_eq!(s.delivered, 5, "{s:?}");
        assert_eq!(s.lossy_drops, 0, "reroute dodges the gray fault");
        assert_eq!(s.rerouted, 5);
        assert_eq!(s.quarantine_sheds, 1);
        let link = fabric.link_stats(a, b);
        assert_eq!(link.rerouted, 5);
        assert_eq!(link.quarantine_sheds, 1);
        assert_eq!(fabric.drop_reasons(b).quarantined, 1);
        // Clearing the quarantine re-exposes the lossy link.
        fabric.clear_quarantine(a, b);
        fabric.transmit(&mut sim, 0, packet(a, b, 500)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().lossy_drops, 1);
    }

    #[test]
    fn quarantine_without_alternate_degrades_in_place() {
        // Two hosts: no alternate path. Transport keeps using the sick
        // link (degraded mode); best-effort is still shed.
        let mut sim = Sim::new();
        let (fabric, a, b) = two_hosts(0.0);
        fabric.quarantine_link(a, b);
        let tp = packet(a, b, 500).with_qos(QosClass::Transport);
        fabric.transmit(&mut sim, 0, tp).unwrap();
        let be = packet(a, b, 500).with_qos(QosClass::BestEffort);
        fabric.transmit(&mut sim, 0, be).unwrap();
        sim.run();
        let s = fabric.stats();
        assert_eq!(s.delivered, 1);
        assert_eq!(s.rerouted, 0, "no third host, no alternate path");
        assert_eq!(s.quarantine_sheds, 1);
    }

    #[test]
    fn unknown_destination_is_dropped_not_panicking() {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let a = fabric.add_host(NicConfig::default());
        fabric.transmit(&mut sim, 0, packet(a, 999, 100)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().switch_drops, 1);
        // Attributed to the (only) leaf, best-effort class.
        assert_eq!(
            fabric.switch_drop_breakdown(),
            vec![((SwitchId::Leaf(0), QosClass::BestEffort), 1)]
        );
    }

    /// Two racks of two hosts joined by `spines` spines; hosts 0,1 in
    /// rack 0 and 2,3 in rack 1.
    fn two_racks(spines: u32) -> (FabricHandle, Vec<HostId>) {
        let fabric = FabricHandle::with_topology(
            FabricConfig::default(),
            ClosSpec::clos(2, 2, spines),
        );
        let hosts = (0..4).map(|_| fabric.add_host(NicConfig::default())).collect();
        (fabric, hosts)
    }

    #[test]
    fn cross_rack_delivery_crosses_trunks() {
        let mut sim = Sim::new();
        let (fabric, h) = two_racks(1);
        fabric.transmit(&mut sim, 0, packet(h[0], h[2], 1000)).unwrap();
        sim.run();
        let cross_at = sim.now();
        assert_eq!(fabric.stats().delivered, 1);
        assert_eq!(fabric.with_nic(h[2], |n| n.rx_pending_total()), 1);
        // Both directed trunks on the path carried the packet.
        let up = fabric.trunk_stats(SwitchId::Leaf(0), SwitchId::Spine(0));
        let down = fabric.trunk_stats(SwitchId::Spine(0), SwitchId::Leaf(1));
        assert_eq!(up.forwarded, 1);
        assert_eq!(down.forwarded, 1);
        assert!(up.bytes >= 1000);
        assert_eq!(fabric.trunks().len(), 2);
        // In-rack traffic is strictly faster: one switch, no trunk hops.
        let mut sim2 = Sim::new();
        let (fabric2, h2) = two_racks(1);
        fabric2.transmit(&mut sim2, 0, packet(h2[0], h2[1], 1000)).unwrap();
        sim2.run();
        assert!(sim2.now() < cross_at, "in-rack {} vs cross-rack {cross_at}", sim2.now());
        assert!(
            fabric2.trunks().is_empty(),
            "in-rack traffic never touches the spine tier"
        );
    }

    #[test]
    fn cross_rack_is_deterministic() {
        let run = || {
            let mut sim = Sim::new();
            let (fabric, h) = two_racks(2);
            for i in 0..20u64 {
                let p = packet(h[0], h[2], 500).with_rss_hash(i);
                fabric.transmit(&mut sim, 0, p).unwrap();
                sim.run();
            }
            (sim.now(), fabric.stats().delivered)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn burst_of_one_matches_single_transmit_cross_rack() {
        let deliver_at = |burst: bool| {
            let mut sim = Sim::new();
            let (fabric, h) = two_racks(1);
            let at = Rc::new(Cell::new(Nanos::ZERO));
            let at2 = at.clone();
            fabric.with_nic(h[2], |nic| {
                nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| at2.set(sim.now())));
                nic.arm_irq(0, true);
            });
            let p = packet(h[0], h[2], 1000).with_rss_hash(0);
            if burst {
                let mut train = vec![p];
                fabric.transmit_burst(&mut sim, 0, &mut train);
            } else {
                fabric.transmit(&mut sim, 0, p).unwrap();
            }
            sim.run();
            at.get()
        };
        let single = deliver_at(false);
        assert!(single > Nanos::ZERO);
        assert_eq!(single, deliver_at(true));
    }

    #[test]
    fn trunk_failure_black_holes_until_restored() {
        let mut sim = Sim::new();
        let (fabric, h) = two_racks(1);
        fabric.fail_trunk(0, 0);
        assert!(fabric.is_trunk_down(0, 0));
        fabric.transmit(&mut sim, 0, packet(h[0], h[2], 500)).unwrap();
        // In-rack traffic is unaffected by a dead trunk.
        fabric.transmit(&mut sim, 0, packet(h[0], h[1], 500)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().trunk_down_drops, 1);
        assert_eq!(fabric.stats().delivered, 1);
        assert_eq!(fabric.drop_reasons(h[2]).trunk_down, 1);
        fabric.restore_trunk(0, 0);
        fabric.transmit(&mut sim, 0, packet(h[0], h[2], 500)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 2);
    }

    #[test]
    fn trunk_failure_reroutes_flows_via_surviving_spine() {
        // With two spines, killing one trunk moves every flow onto the
        // survivor — no losses, ECMP just excludes the dead paths.
        let mut sim = Sim::new();
        let (fabric, h) = two_racks(2);
        fabric.fail_trunk(0, 0);
        for i in 0..10u64 {
            let p = packet(h[0], h[2], 500).with_rss_hash(i);
            fabric.transmit(&mut sim, 0, p).unwrap();
        }
        sim.run();
        assert_eq!(fabric.stats().delivered, 10);
        assert_eq!(fabric.stats().trunk_down_drops, 0);
        assert_eq!(
            fabric.trunk_stats(SwitchId::Leaf(0), SwitchId::Spine(0)).forwarded,
            0,
            "no flow crossed the dead trunk"
        );
        assert_eq!(
            fabric.trunk_stats(SwitchId::Leaf(0), SwitchId::Spine(1)).forwarded,
            10
        );
    }

    #[test]
    fn quarantined_cross_rack_link_reroutes_via_other_spine() {
        // Quarantining a cross-rack host pair with >1 spine reroutes
        // transport around the sick path (salted re-hash) and dodges
        // its gray loss, with no extra-hop penalty.
        let mut sim = Sim::new();
        let (fabric, h) = two_racks(2);
        fabric.set_link_loss(h[0], h[2], 1.0);
        fabric.quarantine_link(h[0], h[2]);
        for _ in 0..5 {
            let p = packet(h[0], h[2], 500).with_qos(QosClass::Transport);
            fabric.transmit(&mut sim, 0, p).unwrap();
        }
        sim.run();
        let s = fabric.stats();
        assert_eq!(s.delivered, 5, "{s:?}");
        assert_eq!(s.lossy_drops, 0, "reroute dodges the gray fault");
        assert_eq!(s.rerouted, 5);
    }

    #[test]
    fn leaf_brownout_drops_and_heals() {
        let mut sim = Sim::new();
        let (fabric, h) = two_racks(1);
        fabric.set_leaf_brownout(1, 1.0, Nanos::ZERO);
        // Cross-rack into the browned-out rack: dropped at the dst leaf.
        fabric.transmit(&mut sim, 0, packet(h[0], h[2], 500)).unwrap();
        // Sourced from the browned-out rack: dropped at the src leaf.
        fabric.transmit(&mut sim, 0, packet(h[2], h[3], 500)).unwrap();
        // Unrelated rack-0 traffic is untouched.
        fabric.transmit(&mut sim, 0, packet(h[0], h[1], 500)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().brownout_drops, 2);
        assert_eq!(fabric.stats().delivered, 1);
        assert_eq!(fabric.drop_reasons(h[2]).brownout, 1);
        assert_eq!(fabric.drop_reasons(h[3]).brownout, 1);
        fabric.set_leaf_brownout(1, 0.0, Nanos::ZERO);
        fabric.transmit(&mut sim, 0, packet(h[0], h[2], 500)).unwrap();
        sim.run();
        assert_eq!(fabric.stats().delivered, 2);
    }

    #[test]
    fn brownout_latency_delays_survivors() {
        let deliver_at = |extra: Nanos| {
            let mut sim = Sim::new();
            let (fabric, h) = two_racks(1);
            fabric.set_leaf_brownout(0, 0.0, extra);
            let at = Rc::new(Cell::new(Nanos::ZERO));
            let at2 = at.clone();
            fabric.with_nic(h[2], |nic| {
                nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| at2.set(sim.now())));
                nic.arm_irq(0, true);
            });
            fabric.transmit(&mut sim, 0, packet(h[0], h[2], 500).with_rss_hash(0)).unwrap();
            sim.run();
            at.get()
        };
        let clean = deliver_at(Nanos::ZERO);
        let slow = deliver_at(Nanos::from_micros(100));
        assert!(clean > Nanos::ZERO);
        assert_eq!(slow, clean + Nanos::from_micros(100));
    }

    #[test]
    fn incast_drops_attribute_to_destination_leaf() {
        // N:1 incast into a tiny-buffered dst leaf port: every tail
        // drop lands on Leaf(1) in the per-switch breakdown, and the
        // breakdown sums to switch_drops.
        let mut sim = Sim::new();
        let fabric = FabricHandle::with_topology(
            FabricConfig {
                switch_buffer_bytes: 4_000,
                ..FabricConfig::default()
            },
            ClosSpec::clos(2, 4, 2),
        );
        let hosts: Vec<HostId> = (0..8)
            .map(|_| {
                fabric.add_host(NicConfig {
                    tx_queue_depth: 4096,
                    ..NicConfig::default()
                })
            })
            .collect();
        let sink = hosts[4]; // rack 1
        for &src in &hosts[..4] {
            for _ in 0..50 {
                fabric.transmit(&mut sim, 0, packet(src, sink, 1000)).unwrap();
            }
        }
        sim.run();
        let s = fabric.stats();
        assert!(s.switch_drops > 0, "incast must overflow the egress buffer");
        assert_eq!(s.delivered + s.switch_drops, 200);
        let breakdown = fabric.switch_drop_breakdown();
        let total: u64 = breakdown.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, s.switch_drops, "breakdown sums to switch_drops");
        assert!(
            breakdown
                .iter()
                .all(|&((sw, _), _)| sw == SwitchId::Leaf(1)),
            "incast loss is at the destination leaf: {breakdown:?}"
        );
    }

    #[test]
    fn wrr_schedule_prefers_transport_under_contention() {
        // Saturate a host egress port with best-effort, then race one
        // transport packet against one more best-effort packet sent at
        // the same instant: under WRR the transport packet must win by
        // more than FIFO ordering would allow.
        let gap = |schedule: snap_topo::QosSchedule| {
            let mut sim = Sim::new();
            let spec = ClosSpec {
                schedule,
                ..ClosSpec::single_rack()
            };
            let fabric = FabricHandle::with_topology(FabricConfig::default(), spec);
            let a = fabric.add_host(NicConfig {
                tx_queue_depth: 4096,
                gbps: 400.0,
                ..NicConfig::default()
            });
            let b = fabric.add_host(NicConfig::default());
            let arrivals = Rc::new(RefCell::new(Vec::new()));
            let arr = arrivals.clone();
            fabric.with_nic(b, |nic| {
                nic.set_irq_handler(Rc::new(move |sim: &mut Sim, _q| {
                    arr.borrow_mut().push(sim.now());
                }));
                nic.arm_irq(0, true);
            });
            // A standing best-effort backlog...
            for _ in 0..20 {
                let p = packet(a, b, 8000).with_rss_hash(0);
                fabric.transmit(&mut sim, 0, p).unwrap();
            }
            // ...then one transport packet.
            let p = packet(a, b, 8000).with_rss_hash(0).with_qos(QosClass::Transport);
            fabric.transmit(&mut sim, 0, p).unwrap();
            sim.run();
            sim.now()
        };
        let fifo = gap(snap_topo::QosSchedule::Fifo);
        let wrr = gap(snap_topo::QosSchedule::Wrr { weights: [4, 1] });
        // Both drain the same bytes; WRR conserves the line, so total
        // completion is close, but the disciplines differ measurably.
        assert!(fifo > Nanos::ZERO && wrr > Nanos::ZERO);
        assert_ne!(fifo, wrr, "WRR must change the schedule");
    }

    #[test]
    fn degenerate_topology_is_the_default() {
        let fabric = FabricHandle::new(FabricConfig::default());
        let topo = fabric.topology();
        assert!(topo.is_single_switch());
        assert_eq!(topo.spines(), 0);
        assert!(topo.same_rack(0, 1_000_000));
    }
}
