//! The packet type moved across the simulated fabric.
//!
//! A [`Packet`] separates what the *NIC and fabric* look at (addresses,
//! steering key, QoS class, wire size) from the *protocol payload*
//! (opaque bytes produced by Pony Express or the TCP model). The fabric
//! never interprets payloads; protocols never see fabric internals —
//! the same layering the paper's stack has.

use bytes::Bytes;
use snap_sim::trace::TraceContext;

use crate::crc::crc32c;

/// Identifies a host (and its NIC) on the fabric.
pub type HostId = u32;

/// Fabric quality-of-service class.
///
/// "The congestion control algorithm we deploy with Pony Express ...
/// runs on dedicated fabric QoS classes" (§3.1); the switch model keeps
/// one egress queue per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum QosClass {
    /// Latency-sensitive datacenter transport traffic (Pony Express).
    Transport,
    /// Default class for kernel TCP and everything else.
    #[default]
    BestEffort,
}

impl QosClass {
    /// All classes, in strict priority order (highest first).
    pub const ALL: [QosClass; 2] = [QosClass::Transport, QosClass::BestEffort];
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Sending host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Steering key consumed by receive-side filters; `None` falls back
    /// to RSS hashing. Pony Express sets this to the destination engine
    /// id so upgrades can detach/attach exactly one engine's traffic.
    pub steer_key: Option<u64>,
    /// Hash used for RSS queue selection when no filter matches.
    pub rss_hash: u64,
    /// QoS class for switch queueing.
    pub qos: QosClass,
    /// Total size on the wire in bytes (headers + payload), which
    /// drives serialization delay and switch buffer occupancy.
    pub wire_size: u32,
    /// Opaque protocol bytes.
    pub payload: Bytes,
    /// NIC-computed end-to-end CRC32C of the payload (offload, §3.4).
    pub crc: u32,
    /// Causal trace context of the op this packet belongs to, if the
    /// op is being traced. Observation-only: the fabric stamps stage
    /// records against it but never branches on it.
    pub trace: Option<TraceContext>,
}

impl Packet {
    /// Builds a packet, computing the offloaded CRC and a default wire
    /// size of payload length + [`Packet::HEADER_OVERHEAD`].
    pub fn new(src: HostId, dst: HostId, payload: Bytes) -> Packet {
        let crc = crc32c(&payload);
        Packet {
            src,
            dst,
            steer_key: None,
            rss_hash: 0,
            qos: QosClass::BestEffort,
            wire_size: payload.len() as u32 + Self::HEADER_OVERHEAD,
            payload,
            crc,
            trace: None,
        }
    }

    /// Builds a packet from a payload whose CRC32C the caller already
    /// computed (e.g. fused into the wire-encode pass), skipping the
    /// second scan over the bytes that [`Packet::new`] would do.
    pub fn with_precomputed_crc(src: HostId, dst: HostId, payload: Bytes, crc: u32) -> Packet {
        debug_assert_eq!(crc, crc32c(&payload), "precomputed CRC mismatch");
        Packet {
            src,
            dst,
            steer_key: None,
            rss_hash: 0,
            qos: QosClass::BestEffort,
            wire_size: payload.len() as u32 + Self::HEADER_OVERHEAD,
            payload,
            crc,
            trace: None,
        }
    }

    /// Bytes of link/IP-level framing added to every payload.
    pub const HEADER_OVERHEAD: u32 = 42;

    /// Sets the QoS class (builder style).
    pub fn with_qos(mut self, qos: QosClass) -> Packet {
        self.qos = qos;
        self
    }

    /// Sets the steering key (builder style).
    pub fn with_steer_key(mut self, key: u64) -> Packet {
        self.steer_key = Some(key);
        self
    }

    /// Sets the RSS hash (builder style).
    pub fn with_rss_hash(mut self, hash: u64) -> Packet {
        self.rss_hash = hash;
        self
    }

    /// Verifies the payload against the carried CRC, as the receiving
    /// NIC does. False indicates corruption in flight.
    pub fn crc_ok(&self) -> bool {
        crc32c(&self.payload) == self.crc
    }

    /// Flips one bit of the payload — models in-flight corruption.
    ///
    /// Mutates in place when this packet uniquely owns its payload
    /// buffer (the common case for a packet in flight); falls back to
    /// copy-on-write when the buffer is shared so other holders never
    /// observe the flip.
    pub fn corrupt(&mut self, byte: usize, bit: u8) {
        let len = self.payload.len();
        if len == 0 {
            return;
        }
        let idx = byte % len;
        let mask = 1 << (bit % 8);
        if let Some(data) = self.payload.try_mut() {
            data[idx] ^= mask;
        } else {
            let mut data = self.payload.to_vec();
            data[idx] ^= mask;
            self.payload = Bytes::from(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_carries_valid_crc() {
        let p = Packet::new(1, 2, Bytes::from_static(b"hello fabric"));
        assert!(p.crc_ok());
        assert_eq!(p.wire_size, 12 + Packet::HEADER_OVERHEAD);
        assert_eq!(p.src, 1);
        assert_eq!(p.dst, 2);
    }

    #[test]
    fn corruption_is_detected() {
        let mut p = Packet::new(1, 2, Bytes::from_static(b"payload bytes"));
        p.corrupt(5, 3);
        assert!(!p.crc_ok());
    }

    #[test]
    fn builders_set_fields() {
        let p = Packet::new(1, 2, Bytes::new())
            .with_qos(QosClass::Transport)
            .with_steer_key(77)
            .with_rss_hash(123);
        assert_eq!(p.qos, QosClass::Transport);
        assert_eq!(p.steer_key, Some(77));
        assert_eq!(p.rss_hash, 123);
    }

    #[test]
    fn qos_priority_order() {
        assert_eq!(QosClass::ALL[0], QosClass::Transport);
        assert!(QosClass::Transport < QosClass::BestEffort);
    }

    #[test]
    fn corrupt_shared_payload_copies_on_write() {
        let shared = Bytes::from(vec![0u8; 16]);
        let mut p = Packet::new(1, 2, shared.clone());
        p.corrupt(3, 1);
        assert!(!p.crc_ok());
        assert_eq!(shared, vec![0u8; 16], "other holders are unaffected");
    }

    #[test]
    fn precomputed_crc_constructor_matches_new() {
        let payload = Bytes::from_static(b"fused crc path");
        let crc = crate::crc::crc32c(&payload);
        let p = Packet::with_precomputed_crc(1, 2, payload.clone(), crc);
        let q = Packet::new(1, 2, payload);
        assert_eq!(p.crc, q.crc);
        assert_eq!(p.wire_size, q.wire_size);
        assert!(p.crc_ok());
    }

    #[test]
    fn corrupt_empty_payload_is_noop() {
        let mut p = Packet::new(1, 2, Bytes::new());
        p.corrupt(0, 0);
        assert!(p.crc_ok());
    }
}
