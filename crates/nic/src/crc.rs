//! CRC32C (Castagnoli) — the NIC's end-to-end invariant checksum.
//!
//! "Pony Express also exploits other stateless NIC offloads; one
//! example is an end-to-end invariant CRC32 calculation over each
//! packet" (§3.4). The simulated NIC stamps packets with this CRC on
//! transmit and verifies on receive; the transport treats a mismatch as
//! corruption and drops the packet, relying on retransmission.
//!
//! Table-driven (slice-by-1) implementation of CRC-32C with the
//! Castagnoli polynomial 0x1EDC6F41 (reflected 0x82F63B78), verified
//! against the RFC 3720 test vectors.

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continues a CRC32C computation: `crc` is the digest so far (0 to
/// start), `data` the next chunk.
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = !crc;
    for &b in data {
        c = (c >> 8) ^ t[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3720_vectors() {
        // Test vectors from RFC 3720 (iSCSI), Appendix B.4.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA, "32 bytes of zeroes");
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43, "32 bytes of ones");
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E, "ascending");
        let descending: Vec<u8> = (0..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C, "descending");
    }

    #[test]
    fn check_value() {
        // The standard "check" input for CRC catalogs.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn append_equals_whole() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32c(data);
        let (a, b) = data.split_at(17);
        let partial = crc32c_append(crc32c(a), b);
        assert_eq!(whole, partial);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32c(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), clean, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
