//! Virtual NIC and fabric substrate.
//!
//! The paper's evaluation runs on 50 and 100 Gbps NICs attached to a
//! datacenter fabric. This crate provides the simulated stand-ins:
//!
//! * [`packet::Packet`] — the unit moved through the system, carrying
//!   an opaque protocol payload (Pony Express wire bytes, TCP-model
//!   segments) plus the fields the NIC itself looks at (steering key,
//!   QoS class, wire size).
//! * [`crc::crc32c`] — the end-to-end invariant CRC32 the paper
//!   offloads to the NIC ("an end-to-end invariant CRC32 calculation
//!   over each packet", §3.4), implemented and verified against
//!   published test vectors.
//! * [`nic::VirtNic`] — a multi-queue NIC with bounded rx descriptor
//!   rings, RSS steering, attachable receive filters (the unit the
//!   transparent-upgrade flow detaches and re-attaches, §4), tx
//!   descriptor slot accounting (driving just-in-time packet
//!   generation, §3.1), and optional interrupt delivery.
//! * [`fabric::Fabric`] — links + a top-of-rack switch with per-QoS
//!   egress queues, serialization/propagation delays, bounded buffers
//!   with tail drop, and injectable random loss.
//! * [`copy_engine::CopyEngine`] — the Intel I/OAT DMA model used for
//!   receive copy offload (§3.4, Table 1).
//!
//! Everything here is driven by the single-threaded [`snap_sim::Sim`]
//! event loop; handles are `Rc`-based by design.

pub mod copy_engine;
pub mod crc;
pub mod fabric;
pub mod nic;
pub mod packet;

pub use copy_engine::CopyEngine;
pub use fabric::{
    ClosSpec, DropReasons, Fabric, FabricConfig, FabricHandle, FabricStats, LinkStats, SwitchId,
    TrunkStats,
};
pub use nic::{NicConfig, NicStats, VirtNic};
pub use packet::{HostId, Packet, QosClass};
