//! Snap: the microkernel-style host networking framework (the paper's
//! primary contribution).
//!
//! Snap hosts packet-processing **engines** — "stateful, single-threaded
//! tasks that are scheduled and run by a Snap engine scheduling runtime"
//! (§2.2) — inside an ordinary userspace process. This crate implements
//! that runtime:
//!
//! * [`engine::Engine`] — the engine abstraction: bounded scheduling
//!   passes, queueing-delay reporting (for the compacting scheduler),
//!   and state serialization (for transparent upgrades).
//! * [`group::EngineGroup`] — engine groups bound to one of the three
//!   scheduling modes of §2.4: **dedicating cores**, **spreading
//!   engines** (interrupt-driven, one thread per engine, MicroQuanta
//!   class), and **compacting engines** (Shenango-style queueing-delay
//!   driven scale-out/compaction).
//! * [`elements`] — the Click-style pluggable element library engines
//!   are built from (§2.2): classifiers, ACLs, token-bucket shapers,
//!   counters, tees, queues.
//! * [`module::SnapProcess`] — the control plane: modules, RPC
//!   dispatch, application bootstrap (shared-memory handle passing),
//!   authentication (§2.3, §2.6).
//! * [`upgrade::UpgradeOrchestrator`] — transparent upgrade with
//!   brownout/blackout phases, migrating engines one at a time (§4),
//!   rolling back to the still-live predecessor if the successor fails
//!   mid-migration.
//! * [`supervisor::Supervisor`] — periodic engine checkpoints (reusing
//!   the upgrade serialization format), dead/wedged engine detection
//!   via per-engine progress heartbeats, and restart-from-checkpoint
//!   recovery.
//!
//! CPU and memory are charged to application containers throughout
//! (§2.5), via the accountants from [`snap_shm`].

pub mod elements;
pub mod engine;
pub mod kernel_inject;
pub mod group;
pub mod module;
pub mod supervisor;
pub mod upgrade;
pub mod virt;

pub use engine::{Engine, EngineId, RunReport};
pub use kernel_inject::{InjectEngine, KernelRing};
pub use virt::{Route, VirtAddr, VirtEngine};
pub use group::{EngineGroup, EngineHealth, GroupConfig, GroupHandle, SchedulingMode};
pub use module::{ControlError, Module, SnapProcess};
pub use supervisor::{RestartFactory, RestartKind, RestartRecord, Supervisor, SupervisorConfig, SupervisorReport};
pub use upgrade::{UpgradeOrchestrator, UpgradeReport};
