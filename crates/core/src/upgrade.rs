//! Transparent upgrades (§4, Fig. 5, Fig. 9).
//!
//! "During upgrades, the running version of Snap serializes all state
//! to an intermediate format stored in memory shared with a new
//! version. As with virtual machine migration techniques, the upgrade
//! is two-phased to minimize the blackout period ... Snap performs
//! upgrades incrementally, migrating engines one at a time, each in its
//! entirety."
//!
//! The [`UpgradeOrchestrator`] drives that flow over virtual time:
//!
//! 1. **Brownout** (per engine): control-plane connections and shared
//!    memory fd handles transfer in the background; the engine keeps
//!    processing packets.
//! 2. **Blackout** (per engine): the engine is suspended, its NIC
//!    receive filters detach (packets for it now drop — the loss the
//!    paper says "end-to-end transport protocols tolerate ... as if it
//!    were congestion-caused packet loss"), state is serialized,
//!    handed to the new instance, deserialized, filters re-attach, and
//!    the successor engine resumes.
//!
//! Blackout duration is dominated by state size (serialize +
//! deserialize at [`snap_sim::costs::UPGRADE_SERIALIZE_BYTES_PER_NS`])
//! plus a fixed detach/re-attach cost — which is exactly why Fig. 9's
//! distribution is heavy-tailed in checkpoint size.

use std::cell::RefCell;
use std::rc::Rc;

use snap_sim::costs;
use snap_sim::{Nanos, Sim};

use crate::engine::{Engine, EngineId};
use crate::group::GroupHandle;

/// Builds the new-version engine from the old engine's serialized
/// state.
pub type EngineFactory = Box<dyn FnOnce(Vec<u8>, &mut Sim) -> Box<dyn Engine>>;

/// A factory that may fail: bad serialized state or a successor that
/// cannot come up. Failure triggers rollback to the predecessor.
pub type FallibleEngineFactory =
    Box<dyn FnOnce(Vec<u8>, &mut Sim) -> Result<Box<dyn Engine>, UpgradeError>>;

/// Why a migration could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpgradeError {
    /// The successor rejected the serialized state (truncated, corrupt,
    /// or from an incompatible version).
    BadState(String),
    /// The successor crashed before taking over (observed through the
    /// engine slot's crash flag during the blackout window).
    SuccessorCrashed,
}

impl std::fmt::Display for UpgradeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpgradeError::BadState(why) => write!(f, "bad serialized state: {why}"),
            UpgradeError::SuccessorCrashed => write!(f, "successor crashed during install"),
        }
    }
}

impl std::error::Error for UpgradeError {}

/// Per-engine upgrade record.
#[derive(Debug, Clone)]
pub struct EngineUpgrade {
    /// Engine name.
    pub engine: String,
    /// Bytes of state checkpointed.
    pub state_bytes: u64,
    /// Brownout (background transfer) duration.
    pub brownout: Nanos,
    /// Blackout (engine unavailable) duration.
    pub blackout: Nanos,
    /// True if the migration failed and the predecessor was resumed;
    /// `blackout` then includes the bounded rollback re-attach cost.
    pub rolled_back: bool,
}

/// Result of a full upgrade run.
#[derive(Debug, Clone, Default)]
pub struct UpgradeReport {
    /// Per-engine records, in migration order.
    pub engines: Vec<EngineUpgrade>,
    /// Time the whole upgrade took, first brownout to last resume.
    pub total: Nanos,
}

impl UpgradeReport {
    /// Median blackout across engines (Fig. 9's headline statistic).
    pub fn median_blackout(&self) -> Nanos {
        if self.engines.is_empty() {
            return Nanos::ZERO;
        }
        let mut blackouts: Vec<Nanos> = self.engines.iter().map(|e| e.blackout).collect();
        blackouts.sort();
        blackouts[blackouts.len() / 2]
    }

    /// Maximum blackout across engines.
    pub fn max_blackout(&self) -> Nanos {
        self.engines
            .iter()
            .map(|e| e.blackout)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Number of engines that failed migration and were rolled back to
    /// their predecessor.
    pub fn rollbacks(&self) -> usize {
        self.engines.iter().filter(|e| e.rolled_back).count()
    }
}

struct UpgradeItem {
    group: GroupHandle,
    id: EngineId,
    /// Control-plane connections to transfer in brownout.
    connections: u32,
    factory: FallibleEngineFactory,
}

/// Orchestrates a transparent upgrade of a set of engines, one at a
/// time (§4).
#[derive(Default)]
pub struct UpgradeOrchestrator {
    items: Vec<UpgradeItem>,
}

impl UpgradeOrchestrator {
    /// Creates an empty orchestrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an engine to migrate. `connections` is the number of
    /// control-plane connections (each costs
    /// [`snap_sim::costs::UPGRADE_PER_CONN_NS`] of brownout transfer);
    /// `factory` constructs the new-version engine from serialized
    /// state.
    pub fn add_engine(
        &mut self,
        group: GroupHandle,
        id: EngineId,
        connections: u32,
        factory: EngineFactory,
    ) {
        self.add_engine_fallible(
            group,
            id,
            connections,
            Box::new(move |state, sim| Ok(factory(state, sim))),
        );
    }

    /// Like [`UpgradeOrchestrator::add_engine`], but the factory may
    /// fail (corrupt state, incompatible version). On failure the
    /// predecessor engine — kept alive through the blackout — is
    /// resumed in place, bounding the extra outage to one more fixed
    /// re-attach cost.
    pub fn add_engine_fallible(
        &mut self,
        group: GroupHandle,
        id: EngineId,
        connections: u32,
        factory: FallibleEngineFactory,
    ) {
        self.items.push(UpgradeItem {
            group,
            id,
            connections,
            factory,
        });
    }

    /// Number of engines queued for migration.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Starts the upgrade; returns a slot the report appears in once
    /// every engine has migrated (drive the simulator to completion).
    pub fn start(self, sim: &mut Sim) -> Rc<RefCell<Option<UpgradeReport>>> {
        let result = Rc::new(RefCell::new(None));
        let started = sim.now();
        let report = UpgradeReport::default();
        let mut items = self.items;
        items.reverse(); // pop() from the front of the original order
        Self::migrate_next(sim, items, report, started, result.clone());
        result
    }

    fn migrate_next(
        sim: &mut Sim,
        mut items: Vec<UpgradeItem>,
        mut report: UpgradeReport,
        started: Nanos,
        result: Rc<RefCell<Option<UpgradeReport>>>,
    ) {
        let Some(item) = items.pop() else {
            report.total = sim.now() - started;
            *result.borrow_mut() = Some(report);
            return;
        };

        // Brownout: background transfer of control connections and
        // shared-memory handles while the engine keeps running.
        let brownout = Nanos(costs::UPGRADE_PER_CONN_NS) * item.connections as u64;
        sim.schedule_in(brownout, move |sim| {
            // Blackout begins: suspend, detach, serialize.
            let blackout_start = sim.now();
            item.group.suspend_engine(sim, item.id);
            let mut old = item
                .group
                .take_engine(item.id)
                .expect("suspended engine present");
            let name = old.name().to_string();
            let state = old.serialize_state();
            // Timing uses the engine's reported checkpoint size, which
            // synthetic engines may model without materializing (the
            // Fig. 9 cell has multi-hundred-MB engines).
            let state_bytes = old.state_bytes().max(state.len() as u64);
            // The predecessor stays alive (suspended, detached) until
            // the successor is confirmed up; it is the rollback target.

            let serialize =
                Nanos((state_bytes as f64 / costs::UPGRADE_SERIALIZE_BYTES_PER_NS) as u64);
            // Serialize + deserialize + fixed detach/attach cost.
            let blackout =
                serialize * 2 + Nanos(costs::UPGRADE_FIXED_BLACKOUT_NS);
            sim.schedule_in(blackout, move |sim| {
                // A crash flag raised on the slot during the blackout
                // window models the successor process dying mid-install.
                let successor_crashed = item
                    .group
                    .engine_health(item.id)
                    .map(|h| h.crashed)
                    .unwrap_or(false);
                let outcome = if successor_crashed {
                    Err(UpgradeError::SuccessorCrashed)
                } else {
                    (item.factory)(state, sim)
                };
                match outcome {
                    Ok(new_engine) => {
                        drop(old);
                        item.group.resume_engine(sim, item.id, new_engine);
                        report.engines.push(EngineUpgrade {
                            engine: name,
                            state_bytes,
                            brownout,
                            blackout: sim.now() - blackout_start,
                            rolled_back: false,
                        });
                        Self::migrate_next(sim, items, report, started, result);
                    }
                    Err(_err) => {
                        // Roll back: pay one more fixed re-attach cost,
                        // then resume the still-live predecessor. Its
                        // `attach` hook re-installs NIC filters; flows
                        // recover the blackout loss via SACK/RTO as in
                        // a successful upgrade.
                        sim.schedule_in(
                            Nanos(costs::UPGRADE_FIXED_BLACKOUT_NS),
                            move |sim| {
                                item.group.resume_engine(sim, item.id, old);
                                report.engines.push(EngineUpgrade {
                                    engine: name,
                                    state_bytes,
                                    brownout,
                                    blackout: sim.now() - blackout_start,
                                    rolled_back: true,
                                });
                                Self::migrate_next(sim, items, report, started, result);
                            },
                        );
                    }
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CountingEngine;
    use crate::group::{GroupConfig, MachineHandle, SchedulingMode};
    use snap_shm::account::CpuAccountant;
    use snap_sched::machine::Machine;

    fn group() -> GroupHandle {
        let machine: MachineHandle = Rc::new(RefCell::new(Machine::new(4, 1)));
        GroupHandle::new(
            GroupConfig {
                name: "g".into(),
                mode: SchedulingMode::Dedicated { cores: vec![0] },
                class: None,
            },
            machine,
            CpuAccountant::new(),
        )
    }

    #[test]
    fn single_engine_upgrade_preserves_state() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("pony0", Nanos(100))));
        g.start(&mut sim);
        // Process some work pre-upgrade so the state is non-trivial.
        g.with_engine(id, |e| {
            let e = e.as_any().downcast_mut::<CountingEngine>().unwrap();
            for _ in 0..3 {
                e.inject(Nanos::ZERO);
            }
        });
        g.wake(&mut sim, id);
        sim.run();

        let mut orch = UpgradeOrchestrator::new();
        orch.add_engine(
            g.clone(),
            id,
            4,
            Box::new(|state, _sim| {
                // "New version" restores the processed counter.
                let restored = u64::from_le_bytes(state.try_into().unwrap());
                let mut e = CountingEngine::new("pony0-v2", Nanos(100));
                e.processed = restored;
                Box::new(e)
            }),
        );
        assert_eq!(orch.len(), 1);
        let result = orch.start(&mut sim);
        sim.run();
        let report = result.borrow().clone().expect("upgrade finished");
        assert_eq!(report.engines.len(), 1);
        assert_eq!(report.engines[0].state_bytes, 8);
        assert!(report.engines[0].blackout >= Nanos(costs::UPGRADE_FIXED_BLACKOUT_NS));
        // State survived into the new version.
        let processed = g.with_engine(id, |e| {
            e.as_any()
                .downcast_mut::<CountingEngine>()
                .unwrap()
                .processed
        });
        assert_eq!(processed, 3);
        assert_eq!(
            g.with_engine(id, |e| e.name().to_string()),
            "pony0-v2"
        );
    }

    #[test]
    fn engines_migrate_one_at_a_time() {
        let mut sim = Sim::new();
        let g = group();
        let ids: Vec<EngineId> = (0..3)
            .map(|i| g.add_engine(Box::new(CountingEngine::new(format!("e{i}"), Nanos(10)))))
            .collect();
        g.start(&mut sim);
        let mut orch = UpgradeOrchestrator::new();
        for id in &ids {
            orch.add_engine(
                g.clone(),
                *id,
                1,
                Box::new(|_, _| Box::new(CountingEngine::new("v2", Nanos(10)))),
            );
        }
        let result = orch.start(&mut sim);
        sim.run();
        let report = result.borrow().clone().unwrap();
        assert_eq!(report.engines.len(), 3);
        assert_eq!(report.engines[0].engine, "e0");
        assert_eq!(report.engines[2].engine, "e2");
        // Sequential migration: total >= sum of per-engine blackouts.
        let sum: Nanos = report.engines.iter().map(|e| e.blackout).sum();
        assert!(report.total >= sum);
        assert!(report.median_blackout() >= Nanos(costs::UPGRADE_FIXED_BLACKOUT_NS));
        assert!(report.max_blackout() >= report.median_blackout());
    }

    #[test]
    fn blackout_scales_with_state_size() {
        let mut sim = Sim::new();
        let g = group();

        struct FatEngine {
            bytes: usize,
        }
        impl Engine for FatEngine {
            fn name(&self) -> &str {
                "fat"
            }
            fn run(&mut self, _: &mut Sim) -> crate::engine::RunReport {
                crate::engine::RunReport::idle(Nanos(100))
            }
            fn pending_work(&self) -> usize {
                0
            }
            fn oldest_pending_age(&self, _: Nanos) -> Nanos {
                Nanos::ZERO
            }
            fn serialize_state(&mut self) -> Vec<u8> {
                vec![0u8; self.bytes]
            }
            fn detach(&mut self, _: &mut Sim) {}
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let small = g.add_engine(Box::new(FatEngine { bytes: 1_000 }));
        let large = g.add_engine(Box::new(FatEngine { bytes: 100_000_000 }));
        g.start(&mut sim);
        let mut orch = UpgradeOrchestrator::new();
        for id in [small, large] {
            orch.add_engine(
                g.clone(),
                id,
                0,
                Box::new(|state, _| Box::new(FatEngine { bytes: state.len() })),
            );
        }
        let result = orch.start(&mut sim);
        sim.run();
        let report = result.borrow().clone().unwrap();
        let b_small = report.engines[0].blackout;
        let b_large = report.engines[1].blackout;
        assert!(
            b_large > b_small * 3,
            "100MB blackout {b_large} should dwarf 1KB blackout {b_small}"
        );
        // 100 MB at 1.5 GB/s, twice, plus 25 ms fixed: ~158 ms. The
        // paper's 200 ms goal holds for engines of this size.
        assert!(b_large < Nanos::from_millis(250), "blackout {b_large}");
    }

    #[test]
    fn failed_factory_rolls_back_to_predecessor() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("pony0", Nanos(100))));
        g.start(&mut sim);
        g.with_engine(id, |e| {
            let e = e.as_any().downcast_mut::<CountingEngine>().unwrap();
            for _ in 0..5 {
                e.inject(Nanos::ZERO);
            }
        });
        g.wake(&mut sim, id);
        sim.run();

        let mut orch = UpgradeOrchestrator::new();
        orch.add_engine_fallible(
            g.clone(),
            id,
            2,
            Box::new(|_state, _sim| {
                Err(UpgradeError::BadState("version skew".into()))
            }),
        );
        let result = orch.start(&mut sim);
        sim.run();
        let report = result.borrow().clone().expect("upgrade finished");
        assert_eq!(report.rollbacks(), 1);
        assert!(report.engines[0].rolled_back);
        // The predecessor came back with its state intact and keeps
        // processing work.
        assert_eq!(g.with_engine(id, |e| e.name().to_string()), "pony0");
        g.with_engine(id, |e| {
            let e = e.as_any().downcast_mut::<CountingEngine>().unwrap();
            assert_eq!(e.processed, 5);
            e.inject(Nanos::ZERO);
        });
        g.wake(&mut sim, id);
        sim.run();
        let processed = g.with_engine(id, |e| {
            e.as_any().downcast_mut::<CountingEngine>().unwrap().processed
        });
        assert_eq!(processed, 6);
        // Rollback blackout is bounded: one extra fixed re-attach on
        // top of the normal serialize + fixed cost.
        assert!(
            report.engines[0].blackout
                <= Nanos(costs::UPGRADE_FIXED_BLACKOUT_NS) * 2 + Nanos::from_millis(1),
            "rollback blackout {} not bounded",
            report.engines[0].blackout
        );
    }

    #[test]
    fn successor_crash_during_blackout_rolls_back() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("pony0", Nanos(100))));
        g.start(&mut sim);
        g.with_engine(id, |e| {
            let e = e.as_any().downcast_mut::<CountingEngine>().unwrap();
            for _ in 0..3 {
                e.inject(Nanos::ZERO);
            }
        });
        g.wake(&mut sim, id);
        sim.run();

        let mut orch = UpgradeOrchestrator::new();
        orch.add_engine(
            g.clone(),
            id,
            0, // no brownout: blackout starts at t=now
            Box::new(|state, _sim| {
                let restored = u64::from_le_bytes(state.try_into().unwrap());
                let mut e = CountingEngine::new("pony0-v2", Nanos(100));
                e.processed = restored;
                Box::new(e)
            }),
        );
        let result = orch.start(&mut sim);
        // Inject a successor crash mid-blackout (blackout is at least
        // the fixed 25 ms cost; 1 ms in is safely inside the window).
        let g2 = g.clone();
        sim.schedule_in(Nanos::from_millis(1), move |_sim| {
            g2.kill_engine(id);
        });
        sim.run();
        let report = result.borrow().clone().expect("upgrade finished");
        assert_eq!(report.rollbacks(), 1);
        assert!(report.engines[0].rolled_back);
        // Predecessor is back: not crashed, original name and state.
        let health = g.engine_health(id).expect("slot live");
        assert!(!health.crashed);
        assert_eq!(g.with_engine(id, |e| e.name().to_string()), "pony0");
        assert_eq!(
            g.with_engine(id, |e| {
                e.as_any().downcast_mut::<CountingEngine>().unwrap().processed
            }),
            3
        );
    }

    #[test]
    fn empty_orchestrator_completes_immediately() {
        let mut sim = Sim::new();
        let orch = UpgradeOrchestrator::new();
        assert!(orch.is_empty());
        let result = orch.start(&mut sim);
        sim.run();
        let report = result.borrow().clone().unwrap();
        assert!(report.engines.is_empty());
        assert_eq!(report.median_blackout(), Nanos::ZERO);
    }
}
