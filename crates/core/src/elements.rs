//! Click-style pluggable packet-processing elements (§2.2).
//!
//! "Snap exposes to engine developers a bare-metal programming
//! environment with libraries for OS-bypass networking, rate limiting,
//! ACL enforcement, protocol processing, tuned data structures, and
//! more, as well as a library of Click-style pluggable 'elements' to
//! construct packet processing pipelines."
//!
//! An [`Element`] consumes a packet and emits zero or more packets; a
//! [`Pipeline`] chains elements. Time-coupled elements (the token
//! bucket shaper, the delay queue) additionally release held packets
//! from [`Element::poll`], which the owning engine calls once per
//! scheduling pass.

use std::collections::VecDeque;

use snap_nic::packet::{HostId, Packet};
use snap_sim::Nanos;

/// What an element did with a packet.
#[derive(Debug)]
pub enum Verdict {
    /// Pass the packet on (possibly modified).
    Forward(Packet),
    /// Duplicate: pass all of these on (the Tee element).
    Fanout(Vec<Packet>),
    /// Drop the packet.
    Drop,
    /// Held inside the element; may emerge later from `poll`.
    Hold,
}

/// A packet-processing element.
pub trait Element {
    /// Element name for pipeline introspection.
    fn name(&self) -> &str;

    /// Processes one packet at virtual time `now`.
    fn process(&mut self, pkt: Packet, now: Nanos) -> Verdict;

    /// Releases any time-held packets due at `now`.
    fn poll(&mut self, _now: Nanos) -> Vec<Packet> {
        Vec::new()
    }

    /// Packets currently held inside the element.
    fn held(&self) -> usize {
        0
    }
}

/// Counts packets and bytes passing through.
#[derive(Debug, Default)]
pub struct Counter {
    /// Packets seen.
    pub packets: u64,
    /// Wire bytes seen.
    pub bytes: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Element for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn process(&mut self, pkt: Packet, _now: Nanos) -> Verdict {
        self.packets += 1;
        self.bytes += pkt.wire_size as u64;
        Verdict::Forward(pkt)
    }
}

/// Access-control list on (src, dst) host pairs.
///
/// Default-deny or default-allow with explicit exceptions.
#[derive(Debug)]
pub struct AclFilter {
    allow_by_default: bool,
    exceptions: Vec<(Option<HostId>, Option<HostId>)>,
    /// Packets denied so far.
    pub denied: u64,
}

impl AclFilter {
    /// Creates a filter with the given default policy.
    pub fn new(allow_by_default: bool) -> Self {
        AclFilter {
            allow_by_default,
            exceptions: Vec::new(),
            denied: 0,
        }
    }

    /// Adds an exception rule; `None` matches any host.
    pub fn add_rule(&mut self, src: Option<HostId>, dst: Option<HostId>) {
        self.exceptions.push((src, dst));
    }

    fn matches_exception(&self, pkt: &Packet) -> bool {
        self.exceptions.iter().any(|(s, d)| {
            s.map(|s| s == pkt.src).unwrap_or(true) && d.map(|d| d == pkt.dst).unwrap_or(true)
        })
    }
}

impl Element for AclFilter {
    fn name(&self) -> &str {
        "acl"
    }

    fn process(&mut self, pkt: Packet, _now: Nanos) -> Verdict {
        let exception = self.matches_exception(&pkt);
        let allowed = self.allow_by_default != exception;
        if allowed {
            Verdict::Forward(pkt)
        } else {
            self.denied += 1;
            Verdict::Drop
        }
    }
}

/// Token-bucket traffic shaper — the "shaping" engine building block
/// for bandwidth enforcement (BwE-style policy, §2.1).
///
/// Conforming packets pass immediately; excess packets are queued and
/// released as tokens refill, up to a bounded backlog (tail-dropped
/// beyond that).
#[derive(Debug)]
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill: Nanos,
    backlog: VecDeque<Packet>,
    max_backlog: usize,
    /// Packets dropped due to backlog overflow.
    pub shaped_drops: u64,
}

impl TokenBucket {
    /// Creates a shaper with the given rate and burst.
    ///
    /// # Panics
    ///
    /// Panics if rate or burst is non-positive.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64, max_backlog: usize) -> Self {
        assert!(rate_bytes_per_sec > 0.0 && burst_bytes > 0.0);
        TokenBucket {
            rate_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes,
            last_refill: Nanos::ZERO,
            backlog: VecDeque::new(),
            max_backlog,
            shaped_drops: 0,
        }
    }

    fn refill(&mut self, now: Nanos) {
        if now > self.last_refill {
            let dt = (now - self.last_refill).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
            self.last_refill = now;
        }
    }

    /// Time at which the bucket will have `bytes` tokens.
    pub fn next_release(&self, bytes: f64) -> Option<Nanos> {
        if self.tokens >= bytes {
            return Some(self.last_refill);
        }
        let need = bytes - self.tokens;
        let secs = need / self.rate_bytes_per_sec;
        Some(self.last_refill + Nanos::from_secs_f64(secs))
    }
}

impl Element for TokenBucket {
    fn name(&self) -> &str {
        "token-bucket"
    }

    fn process(&mut self, pkt: Packet, now: Nanos) -> Verdict {
        self.refill(now);
        let cost = pkt.wire_size as f64;
        if self.backlog.is_empty() && self.tokens >= cost {
            self.tokens -= cost;
            return Verdict::Forward(pkt);
        }
        if self.backlog.len() >= self.max_backlog {
            self.shaped_drops += 1;
            return Verdict::Drop;
        }
        self.backlog.push_back(pkt);
        Verdict::Hold
    }

    fn poll(&mut self, now: Nanos) -> Vec<Packet> {
        self.refill(now);
        let mut out = Vec::new();
        while let Some(front) = self.backlog.front() {
            let cost = front.wire_size as f64;
            if self.tokens < cost {
                break;
            }
            self.tokens -= cost;
            out.push(self.backlog.pop_front().expect("front exists"));
        }
        out
    }

    fn held(&self) -> usize {
        self.backlog.len()
    }
}

/// Duplicates every packet to produce `copies` outputs (mirroring).
#[derive(Debug)]
pub struct Tee {
    copies: usize,
}

impl Tee {
    /// Creates a tee emitting `copies` packets per input.
    ///
    /// # Panics
    ///
    /// Panics if `copies` is zero.
    pub fn new(copies: usize) -> Self {
        assert!(copies > 0, "a zero-output tee is a drop");
        Tee { copies }
    }
}

impl Element for Tee {
    fn name(&self) -> &str {
        "tee"
    }

    fn process(&mut self, pkt: Packet, _now: Nanos) -> Verdict {
        let mut out = Vec::with_capacity(self.copies);
        for _ in 0..self.copies - 1 {
            out.push(pkt.clone());
        }
        out.push(pkt);
        Verdict::Fanout(out)
    }
}

/// Classifies packets by a predicate, rewriting their steering key so a
/// downstream stage (or NIC filter) can route them.
pub struct Classifier {
    name: String,
    classify: Box<dyn FnMut(&Packet) -> u64>,
}

impl Classifier {
    /// Creates a classifier computing a steering key per packet.
    pub fn new(name: impl Into<String>, classify: impl FnMut(&Packet) -> u64 + 'static) -> Self {
        Classifier {
            name: name.into(),
            classify: Box::new(classify),
        }
    }
}

impl Element for Classifier {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, mut pkt: Packet, _now: Nanos) -> Verdict {
        pkt.steer_key = Some((self.classify)(&pkt));
        Verdict::Forward(pkt)
    }
}

/// A fixed-delay stage (models a processing stage with latency).
#[derive(Debug)]
pub struct DelayQueue {
    delay: Nanos,
    held: VecDeque<(Nanos, Packet)>,
}

impl DelayQueue {
    /// Creates a stage that holds each packet for `delay`.
    pub fn new(delay: Nanos) -> Self {
        DelayQueue {
            delay,
            held: VecDeque::new(),
        }
    }
}

impl Element for DelayQueue {
    fn name(&self) -> &str {
        "delay"
    }

    fn process(&mut self, pkt: Packet, now: Nanos) -> Verdict {
        self.held.push_back((now + self.delay, pkt));
        Verdict::Hold
    }

    fn poll(&mut self, now: Nanos) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some((due, _)) = self.held.front() {
            if *due > now {
                break;
            }
            out.push(self.held.pop_front().expect("front exists").1);
        }
        out
    }

    fn held(&self) -> usize {
        self.held.len()
    }
}

/// A chain of elements applied in order.
///
/// `push` runs a packet through the chain from the first element;
/// `poll` releases time-held packets from every stage and runs them
/// through the *remainder* of the chain.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Element>>,
}

impl Pipeline {
    /// Creates an empty pipeline (which forwards everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage (builder style).
    pub fn push_stage(mut self, e: Box<dyn Element>) -> Self {
        self.stages.push(e);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Access a stage for stats readout.
    pub fn stage(&self, i: usize) -> &dyn Element {
        self.stages[i].as_ref()
    }

    fn run_from(&mut self, start: usize, pkt: Packet, now: Nanos, out: &mut Vec<Packet>) {
        let mut wave = vec![pkt];
        for i in start..self.stages.len() {
            let mut next = Vec::with_capacity(wave.len());
            for p in wave {
                match self.stages[i].process(p, now) {
                    Verdict::Forward(p) => next.push(p),
                    Verdict::Fanout(ps) => next.extend(ps),
                    Verdict::Drop | Verdict::Hold => {}
                }
            }
            wave = next;
            if wave.is_empty() {
                return;
            }
        }
        out.extend(wave);
    }

    /// Runs a packet through the whole chain; returns emitted packets.
    pub fn push(&mut self, pkt: Packet, now: Nanos) -> Vec<Packet> {
        let mut out = Vec::new();
        self.run_from(0, pkt, now, &mut out);
        out
    }

    /// Releases due packets from every stage, continuing them through
    /// the rest of the chain; returns everything that reached the end.
    pub fn poll(&mut self, now: Nanos) -> Vec<Packet> {
        let mut out = Vec::new();
        for i in 0..self.stages.len() {
            let released = self.stages[i].poll(now);
            for p in released {
                self.run_from(i + 1, p, now, &mut out);
            }
        }
        out
    }

    /// Total packets held across stages.
    pub fn held(&self) -> usize {
        self.stages.iter().map(|s| s.held()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(src: HostId, dst: HostId, len: usize) -> Packet {
        Packet::new(src, dst, Bytes::from(vec![0u8; len]))
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        let p = pkt(1, 2, 100);
        let wire = p.wire_size as u64;
        match c.process(p, Nanos::ZERO) {
            Verdict::Forward(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.packets, 1);
        assert_eq!(c.bytes, wire);
    }

    #[test]
    fn acl_default_deny_with_allow_rule() {
        let mut acl = AclFilter::new(false);
        acl.add_rule(Some(1), None); // allow anything from host 1
        assert!(matches!(acl.process(pkt(1, 9, 10), Nanos::ZERO), Verdict::Forward(_)));
        assert!(matches!(acl.process(pkt(2, 9, 10), Nanos::ZERO), Verdict::Drop));
        assert_eq!(acl.denied, 1);
    }

    #[test]
    fn acl_default_allow_with_deny_rule() {
        let mut acl = AclFilter::new(true);
        acl.add_rule(None, Some(7)); // deny anything to host 7
        assert!(matches!(acl.process(pkt(1, 7, 10), Nanos::ZERO), Verdict::Drop));
        assert!(matches!(acl.process(pkt(1, 8, 10), Nanos::ZERO), Verdict::Forward(_)));
    }

    #[test]
    fn token_bucket_conforms_then_holds() {
        // 1000 B/s, burst 200 B; packets are 142 B wire (100 + 42).
        let mut tb = TokenBucket::new(1000.0, 200.0, 10);
        assert!(matches!(tb.process(pkt(1, 2, 100), Nanos::ZERO), Verdict::Forward(_)));
        // Bucket nearly empty; second packet held.
        assert!(matches!(tb.process(pkt(1, 2, 100), Nanos::ZERO), Verdict::Hold));
        assert_eq!(tb.held(), 1);
        // 58 tokens remain; the held 142 B packet needs 84 more, i.e.
        // 84 ms of refill at 1000 B/s.
        assert!(tb.poll(Nanos::from_millis(50)).is_empty());
        let released = tb.poll(Nanos::from_millis(200));
        assert_eq!(released.len(), 1);
        assert_eq!(tb.held(), 0);
    }

    #[test]
    fn token_bucket_drops_beyond_backlog() {
        let mut tb = TokenBucket::new(1000.0, 150.0, 2);
        tb.process(pkt(1, 2, 100), Nanos::ZERO); // forwarded
        tb.process(pkt(1, 2, 100), Nanos::ZERO); // held
        tb.process(pkt(1, 2, 100), Nanos::ZERO); // held
        assert!(matches!(tb.process(pkt(1, 2, 100), Nanos::ZERO), Verdict::Drop));
        assert_eq!(tb.shaped_drops, 1);
    }

    #[test]
    fn token_bucket_rate_is_enforced_long_run() {
        // 10 KB/s shaper; offer 100 packets of 142 B wire over 1 s.
        let mut tb = TokenBucket::new(10_000.0, 500.0, 1_000);
        let mut passed = 0u64;
        for i in 0..100 {
            let now = Nanos::from_millis(i * 10);
            if let Verdict::Forward(_) = tb.process(pkt(1, 2, 100), now) {
                passed += 1;
            }
            passed += tb.poll(now).len() as u64;
        }
        let bytes = passed * 142;
        // ~10 KB allowed in 1 s (+ burst).
        assert!(bytes <= 11_000, "shaper leaked {bytes} bytes");
        assert!(bytes >= 9_000, "shaper overthrottled to {bytes} bytes");
    }

    #[test]
    fn tee_duplicates() {
        let mut tee = Tee::new(3);
        match tee.process(pkt(1, 2, 10), Nanos::ZERO) {
            Verdict::Fanout(ps) => assert_eq!(ps.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn classifier_sets_steer_key() {
        let mut c = Classifier::new("by-dst", |p| p.dst as u64 * 10);
        match c.process(pkt(1, 4, 10), Nanos::ZERO) {
            Verdict::Forward(p) => assert_eq!(p.steer_key, Some(40)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delay_queue_releases_in_order() {
        let mut d = DelayQueue::new(Nanos::from_micros(10));
        d.process(pkt(1, 2, 1), Nanos(0));
        d.process(pkt(1, 2, 2), Nanos(5_000));
        assert_eq!(d.poll(Nanos(9_999)).len(), 0);
        assert_eq!(d.poll(Nanos(10_000)).len(), 1);
        assert_eq!(d.poll(Nanos(15_000)).len(), 1);
        assert_eq!(d.held(), 0);
    }

    #[test]
    fn pipeline_chains_and_continues_after_hold() {
        let mut pipe = Pipeline::new()
            .push_stage(Box::new(Counter::new()))
            .push_stage(Box::new(DelayQueue::new(Nanos::from_micros(5))))
            .push_stage(Box::new(Counter::new()));
        let out = pipe.push(pkt(1, 2, 10), Nanos::ZERO);
        assert!(out.is_empty(), "held in the delay stage");
        assert_eq!(pipe.held(), 1);
        let out = pipe.poll(Nanos::from_micros(5));
        assert_eq!(out.len(), 1);
        // Released packet passed through the downstream counter only.
        // (stage 0 saw it once on push).
        // Downstream counter (stage 2):
        // can't downcast trait objects here; verified by pipeline
        // emitting exactly one packet.
        assert_eq!(pipe.held(), 0);
    }

    #[test]
    fn pipeline_drop_short_circuits() {
        let mut acl = AclFilter::new(false);
        let _ = &mut acl; // default deny, no rules
        let mut pipe = Pipeline::new()
            .push_stage(Box::new(acl))
            .push_stage(Box::new(Counter::new()));
        let out = pipe.push(pkt(1, 2, 10), Nanos::ZERO);
        assert!(out.is_empty());
    }

    #[test]
    fn pipeline_tee_fanout_flows_downstream() {
        let mut pipe = Pipeline::new()
            .push_stage(Box::new(Tee::new(2)))
            .push_stage(Box::new(Counter::new()));
        let out = pipe.push(pkt(1, 2, 10), Nanos::ZERO);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_pipeline_forwards() {
        let mut pipe = Pipeline::new();
        assert!(pipe.is_empty());
        let out = pipe.push(pkt(1, 2, 10), Nanos::ZERO);
        assert_eq!(out.len(), 1);
    }
}
