//! Engine groups and the three engine-scheduling modes (§2.4).
//!
//! "Snap accommodates each of these cases with support for bundling
//! engines into groups with a specific scheduling mode, which dictates
//! a scheduling algorithm and CPU resource constraints."
//!
//! * **Dedicating cores** — engines pinned to dedicated hyperthreads,
//!   spin-polling; CPU does not scale with load but latency is minimal.
//!   When CPU constrained (more engines than cores) the runtime
//!   fair-shares by multiplexing engines round-robin on the workers.
//! * **Spreading engines** — one thread per engine; blocks on
//!   interrupt notification when idle and wakes through the MicroQuanta
//!   class with priority. Best tail latency given enough cores, at the
//!   cost of per-wake interrupt/context-switch overhead.
//! * **Compacting engines** — work collapses onto as few cores as
//!   possible; a rebalancer polls engine queueing delays (estimated
//!   Shenango-style from the age of the oldest pending item) and scales
//!   out when the delay exceeds the latency SLO, migrating engines back
//!   and compacting when load subsides.
//!
//! The runtime here is simulator-driven: workers are virtual threads
//! whose wakeups, slices, and spin time are charged against the shared
//! [`snap_sched::Machine`] and metered for the Fig. 6(b) CPU curves.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use snap_shm::account::CpuAccountant;
use snap_sim::costs;
use snap_sim::stats::Histogram;
use snap_sim::{Nanos, Sim};

use snap_sched::classes::{MicroQuantaBudget, SchedClass};
use snap_sched::machine::{CoreId, Machine};

use crate::engine::{Engine, EngineId, RunReport};
use crate::module::ControlError;

/// Shared machine handle (matches `snap_sched::antagonist::MachineHandle`).
pub type MachineHandle = Rc<RefCell<Machine>>;

/// Depth-1 control work executed on an engine's worker before its next
/// pass (the engine mailbox, §2.3).
pub type MailboxWork = Box<dyn FnOnce(&mut dyn Engine)>;

/// Completion callback of a backoff-retried mailbox RPC; fires exactly
/// once with the post outcome.
pub type PostResult = Box<dyn FnOnce(&mut Sim, Result<(), ControlError>)>;

/// The scheduling mode of an engine group (§2.4, Fig. 3).
#[derive(Debug, Clone)]
pub enum SchedulingMode {
    /// Pin engines to dedicated spinning hyperthreads.
    Dedicated {
        /// Cores granted to this group; engines are distributed
        /// round-robin and fair-shared when outnumbering cores.
        cores: Vec<CoreId>,
    },
    /// One interrupt-driven MicroQuanta thread per engine.
    Spreading,
    /// Collapse onto few cores; scale by queueing-delay SLO.
    Compacting {
        /// Queueing-delay SLO that triggers scale-out.
        slo: Nanos,
        /// Rebalancer polling interval (non-preemptive polling is the
        /// latency floor of this mode, §2.4).
        rebalance_poll: Nanos,
        /// Idle time after which the last spinning worker blocks, to
        /// "scale down to less than a full core".
        idle_block: Nanos,
    },
}

impl SchedulingMode {
    /// The default compacting configuration used in the evaluation.
    pub fn compacting_default() -> SchedulingMode {
        SchedulingMode::Compacting {
            slo: Nanos::from_micros(50),
            rebalance_poll: Nanos::from_micros(10),
            idle_block: Nanos::from_micros(100),
        }
    }
}

/// Group construction parameters.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Group name (dashboards, upgrade logs).
    pub name: String,
    /// Scheduling mode.
    pub mode: SchedulingMode,
    /// Kernel scheduling class for the group's worker threads; `None`
    /// picks the mode's default (FIFO for dedicated cores, MicroQuanta
    /// otherwise). Fig. 6(d) sets `Some(Cfs { nice: -20 })` to compare
    /// MicroQuanta against the best CFS can do.
    pub class: Option<SchedClass>,
}

impl GroupConfig {
    /// Config with the mode's default scheduling class.
    pub fn new(name: impl Into<String>, mode: SchedulingMode) -> Self {
        GroupConfig {
            name: name.into(),
            mode,
            class: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WorkerState {
    /// Spin-polling with no work; `since` starts the idle-spin clock.
    SpinningIdle { since: Nanos },
    /// Parked on interrupt notification.
    Blocked,
    /// A wakeup or run pass is already scheduled.
    Scheduled,
}

struct Worker {
    engines: Vec<EngineId>,
    state: WorkerState,
    core: CoreId,
    /// Spinning workers burn their core while idle; blocked workers
    /// pay a wake cost instead.
    spins: bool,
    budget: Option<MicroQuantaBudget>,
    /// Cancels the pending "block after idling" event, if any.
    idle_block_event: Option<snap_sim::EventHandle>,
}

struct Slot {
    engine: Box<dyn Engine>,
    worker: usize,
    /// Depth-1 deferred control work (the engine mailbox, §2.3),
    /// executed on the engine's worker at the start of its next pass.
    mailbox: Option<MailboxWork>,
    last_report: RunReport,
    /// When the engine last completed a run pass — the progress
    /// heartbeat sampled by the supervisor for wedge detection.
    last_pass: Nanos,
}

/// A supervisor-facing snapshot of one engine's liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineHealth {
    /// Items the engine reports pending (0 for a crashed engine — its
    /// state is gone).
    pub pending: u64,
    /// Virtual time of the engine's last completed run pass.
    pub last_pass: Nanos,
    /// True once [`GroupHandle::kill_engine`] destroyed the engine.
    pub crashed: bool,
    /// True while the engine is suspended (upgrade/restart in flight).
    pub suspended: bool,
}

/// Aggregated CPU consumption of a group.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupCpu {
    /// CPU spent inside engine passes (useful work + poll passes).
    pub engine: Nanos,
    /// CPU burned spin-polling while idle.
    pub spin: Nanos,
    /// Interrupt + context-switch overhead of blocked-thread wakeups.
    pub wake_overhead: Nanos,
}

impl GroupCpu {
    /// Total CPU across all categories.
    pub fn total(&self) -> Nanos {
        self.engine + self.spin + self.wake_overhead
    }
}

/// CPU this group consumed on one core, split by category — the
/// per-core attribution behind the paper's Table 1 / Fig. 5 efficiency
/// comparison. Every nanosecond in [`GroupCpu`] is simultaneously
/// charged to exactly one core, so summing [`CoreCpu::total`] across
/// [`GroupHandle::core_cpu`] reproduces [`GroupCpu::total`] exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCpu {
    /// CPU spent inside engine passes on this core.
    pub busy: Nanos,
    /// CPU burned spin-polling (idle spin + poll-waits) on this core.
    pub spin: Nanos,
    /// Interrupt + context-switch overhead paid on this core.
    pub wake_overhead: Nanos,
}

impl CoreCpu {
    /// Total CPU across all categories on this core.
    pub fn total(&self) -> Nanos {
        self.busy + self.spin + self.wake_overhead
    }
}

/// An engine group plus its scheduling runtime state.
pub struct EngineGroup {
    name: String,
    mode: SchedulingMode,
    class_override: Option<SchedClass>,
    slots: Vec<Option<Slot>>,
    workers: Vec<Worker>,
    machine: MachineHandle,
    cpu: GroupCpu,
    /// Per-core split of `cpu`: every accrual lands in both, keyed by
    /// the core it was charged on (deterministic iteration).
    core_cpu: BTreeMap<CoreId, CoreCpu>,
    /// Cumulative engine-pass CPU per engine slot (slowdown-inflated,
    /// like the group totals). Sums to `cpu.engine`.
    engine_cpu: Vec<Nanos>,
    accountant: CpuAccountant,
    next_core: usize,
    started: bool,
    /// Set by [`GroupHandle::stop`]; ends the rebalancer loop so a
    /// drained simulation can terminate.
    stopped: bool,
    /// Engines currently detached for upgrade are not scheduled.
    suspended: Vec<bool>,
    /// Engines destroyed by fault injection ([`GroupHandle::kill_engine`]).
    crashed: Vec<bool>,
    /// Wedged engines make no progress until this virtual time.
    stalled_until: Vec<Nanos>,
    /// Per-engine CPU inflation factor (gray-failure model: a
    /// slow-degrading engine burns `factor`× CPU per pass, stretching
    /// its dequeue latency without ever crashing). 1.0 = healthy.
    slowdown: Vec<f64>,
    /// Seeded jitter stream for mailbox-retry backoff, so concurrent
    /// retriers against the same busy mailbox don't synchronize into
    /// waves (they'd otherwise collide forever at identical delays).
    retry_rng: snap_sim::Rng,
    /// Scheduling delay of every wake that had to schedule a worker:
    /// spin pickup for a spinning worker, interrupt wake latency for a
    /// blocked one. The per-mode distribution behind the trace layer's
    /// engine-dequeue gap and Fig. 3's latency/CPU trade-off.
    sched_delay: Histogram,
}

impl EngineGroup {
    fn sched_class(&self) -> SchedClass {
        if let Some(class) = self.class_override {
            return class;
        }
        match self.mode {
            SchedulingMode::Dedicated { .. } => SchedClass::Fifo,
            _ => SchedClass::microquanta_default(),
        }
    }
}

/// Cloneable handle to a shared [`EngineGroup`]; the public API.
#[derive(Clone)]
pub struct GroupHandle {
    inner: Rc<RefCell<EngineGroup>>,
}

impl GroupHandle {
    /// Creates an empty group on `machine`.
    pub fn new(cfg: GroupConfig, machine: MachineHandle, accountant: CpuAccountant) -> Self {
        GroupHandle {
            inner: Rc::new(RefCell::new(EngineGroup {
                name: cfg.name,
                mode: cfg.mode,
                class_override: cfg.class,
                slots: Vec::new(),
                workers: Vec::new(),
                machine,
                cpu: GroupCpu::default(),
                core_cpu: BTreeMap::new(),
                engine_cpu: Vec::new(),
                accountant,
                next_core: 0,
                started: false,
                stopped: false,
                suspended: Vec::new(),
                crashed: Vec::new(),
                stalled_until: Vec::new(),
                slowdown: Vec::new(),
                retry_rng: snap_sim::Rng::new(0x6261_636b).stream(0x6f_6666),
                sched_delay: Histogram::new(),
            })),
        }
    }

    /// Group name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Adds an engine; returns its id. May be called before or after
    /// [`GroupHandle::start`].
    pub fn add_engine(&self, engine: Box<dyn Engine>) -> EngineId {
        let mut g = self.inner.borrow_mut();
        let id = EngineId(g.slots.len() as u32);
        let worker = match g.mode {
            SchedulingMode::Dedicated { ref cores } => {
                // One spinning worker per granted core; engines beyond
                // the core count fair-share existing workers.
                let wi = g.slots.len() % cores.len().max(1);
                if g.workers.len() <= wi {
                    let core = cores.get(wi).copied().unwrap_or(0);
                    g.machine.borrow_mut().set_spinning(core, true);
                    g.workers.push(Worker {
                        engines: Vec::new(),
                        state: WorkerState::SpinningIdle { since: Nanos::ZERO },
                        core,
                        spins: true,
                        budget: None,
                        idle_block_event: None,
                    });
                }
                wi
            }
            SchedulingMode::Spreading => {
                // One blocked worker per engine, MicroQuanta bandwidth.
                let core = g.next_core;
                let num_cores = g.machine.borrow().num_cores();
                g.next_core = (g.next_core + 1) % num_cores;
                g.workers.push(Worker {
                    engines: Vec::new(),
                    state: WorkerState::Blocked,
                    core,
                    spins: false,
                    budget: Some(MicroQuantaBudget::default_engine()),
                    idle_block_event: None,
                });
                g.workers.len() - 1
            }
            SchedulingMode::Compacting { .. } => {
                // All engines start on the primary spinning worker.
                if g.workers.is_empty() {
                    g.machine.borrow_mut().set_spinning(0, true);
                    g.workers.push(Worker {
                        engines: Vec::new(),
                        state: WorkerState::SpinningIdle { since: Nanos::ZERO },
                        core: 0,
                        spins: true,
                        budget: Some(MicroQuantaBudget::default_engine()),
                        idle_block_event: None,
                    });
                }
                0
            }
        };
        g.workers[worker].engines.push(id);
        g.slots.push(Some(Slot {
            engine,
            worker,
            mailbox: None,
            last_report: RunReport::default(),
            last_pass: Nanos::ZERO,
        }));
        g.suspended.push(false);
        g.crashed.push(false);
        g.stalled_until.push(Nanos::ZERO);
        g.slowdown.push(1.0);
        g.engine_cpu.push(Nanos::ZERO);
        id
    }

    /// Starts the group runtime (rebalancer for compacting mode).
    pub fn start(&self, sim: &mut Sim) {
        let (rebalance, started) = {
            let mut g = self.inner.borrow_mut();
            let started = g.started;
            g.started = true;
            match g.mode {
                SchedulingMode::Compacting { rebalance_poll, .. } => {
                    (Some(rebalance_poll), started)
                }
                _ => (None, started),
            }
        };
        if started {
            return;
        }
        if let Some(poll) = rebalance {
            let handle = self.clone();
            snap_sim::event::every(sim, sim.now() + poll, poll, move |sim| {
                if handle.inner.borrow().stopped {
                    return false;
                }
                handle.rebalance(sim);
                true
            });
        }
    }

    /// Overrides the kernel scheduling class for this group's workers
    /// (Fig. 6d compares MicroQuanta against CFS nice -20).
    pub fn set_class_override(&self, class: SchedClass) {
        self.inner.borrow_mut().class_override = Some(class);
    }

    /// Stops the group's background rebalancer (compacting mode); the
    /// simulation can then drain. Engines already scheduled finish
    /// their work.
    pub fn stop(&self) {
        self.inner.borrow_mut().stopped = true;
    }

    /// Engine ids currently in the group.
    pub fn engine_ids(&self) -> Vec<EngineId> {
        let g = self.inner.borrow();
        (0..g.slots.len() as u32)
            .map(EngineId)
            .filter(|id| g.slots[id.0 as usize].is_some())
            .collect()
    }

    /// Returns a cloneable wake callback for an engine, safe to invoke
    /// from any simulator event (it defers through the event queue, so
    /// calling it from inside a pass cannot re-enter the runtime).
    pub fn wake_handle(&self, id: EngineId) -> Rc<dyn Fn(&mut Sim)> {
        let handle = self.clone();
        Rc::new(move |sim: &mut Sim| {
            let handle = handle.clone();
            sim.schedule_at(sim.now(), move |sim| handle.wake(sim, id));
        })
    }

    /// Signals that an engine has new work (packet arrival, command
    /// submission, timer). Schedules its worker if necessary.
    pub fn wake(&self, sim: &mut Sim, id: EngineId) {
        let now = sim.now();
        let (worker_idx, action) = {
            let mut g = self.inner.borrow_mut();
            if g.suspended[id.0 as usize]
                || g.crashed[id.0 as usize]
                || g.slots[id.0 as usize].is_none()
            {
                return;
            }
            let wi = g.slots[id.0 as usize].as_ref().expect("checked above").worker;
            let class = g.sched_class();
            let w = &mut g.workers[wi];
            match w.state {
                WorkerState::Scheduled => (wi, None),
                WorkerState::SpinningIdle { since } => {
                    if let Some(ev) = w.idle_block_event.take() {
                        ev.cancel();
                    }
                    w.state = WorkerState::Scheduled;
                    let core = w.core;
                    let accrued = now.saturating_sub(since);
                    g.cpu.spin += accrued;
                    g.core_cpu.entry(core).or_default().spin += accrued;
                    (wi, Some(Nanos(costs::SPIN_PICKUP_NS)))
                }
                WorkerState::Blocked => {
                    w.state = WorkerState::Scheduled;
                    let core_hint = Some(wi as u64);
                    let (core, lat) =
                        g.machine.borrow_mut().interrupt_wakeup(now, class, core_hint);
                    let w = &mut g.workers[wi];
                    w.core = core;
                    let overhead = Nanos(costs::INTERRUPT_NS + costs::CONTEXT_SWITCH_NS);
                    g.cpu.wake_overhead += overhead;
                    g.core_cpu.entry(core).or_default().wake_overhead += overhead;
                    (wi, Some(lat))
                }
            }
        };
        if let Some(delay) = action {
            self.inner.borrow_mut().sched_delay.record_nanos(delay);
            let handle = self.clone();
            sim.schedule_at(now + delay, move |sim| handle.run_worker(sim, worker_idx));
        }
    }

    /// One worker scheduling pass: service mailboxes, run each assigned
    /// engine once, charge CPU, and reschedule or go idle.
    fn run_worker(&self, sim: &mut Sim, worker_idx: usize) {
        // Collect the engines to run without holding the borrow across
        // `Engine::run` (engines may transmit packets, which schedules
        // fabric events; those only fire later, but they may also call
        // wake handles which defer through the event queue).
        let engine_ids = {
            let g = self.inner.borrow();
            match g.workers.get(worker_idx) {
                Some(w) => w.engines.clone(),
                None => return,
            }
        };
        let now = sim.now();
        let mut total_cpu = Nanos::ZERO;
        let mut any_work = false;
        let mut any_pending = false;
        for id in &engine_ids {
            // Take the engine out of the slot to run it borrow-free.
            let taken = {
                let mut g = self.inner.borrow_mut();
                if g.suspended[id.0 as usize]
                    || g.crashed[id.0 as usize]
                    || g.stalled_until[id.0 as usize] > now
                {
                    continue;
                }
                let factor = g.slowdown[id.0 as usize];
                g.slots[id.0 as usize].as_mut().map(|slot| {
                    let mb = slot.mailbox.take();
                    (std::mem::replace(
                        &mut slot.engine,
                        Box::new(crate::engine::CountingEngine::new("placeholder", Nanos(0))),
                    ), mb, factor)
                })
            };
            let Some((mut engine, mailbox, factor)) = taken else { continue };
            if let Some(work) = mailbox {
                work(engine.as_mut());
            }
            let mut report = engine.run(sim);
            if factor > 1.0 {
                // Gray failure: the same pass burns `factor`× the CPU,
                // which stretches the worker's slice and every queued
                // op's dequeue latency behind it.
                report.cpu = Nanos((report.cpu.as_nanos() as f64 * factor) as u64);
            }
            total_cpu += report.cpu;
            any_work |= report.work_done;
            any_pending |= report.pending > 0;
            let container = engine.container().to_string();
            let mut g = self.inner.borrow_mut();
            g.accountant.charge(&container, report.cpu.as_nanos());
            g.engine_cpu[id.0 as usize] += report.cpu;
            if let Some(slot) = g.slots[id.0 as usize].as_mut() {
                slot.engine = engine;
                slot.last_report = report;
                slot.last_pass = now;
            }
        }

        // Earliest self-timer deadline across this worker's engines:
        // near deadlines are poll-waited (burning spin CPU) instead of
        // paying a block + interrupt-wake cycle per pacing gap.
        let next_deadline = {
            let g = self.inner.borrow();
            engine_ids
                .iter()
                .filter_map(|id| g.slots[id.0 as usize].as_ref())
                .filter_map(|s| s.last_report.next_deadline)
                .min()
        };

        // Charge the machine and decide what happens next.
        let next = {
            let mut g = self.inner.borrow_mut();
            g.cpu.engine += total_cpu;
            let w = &mut g.workers[worker_idx];
            let core = w.core;
            let throttle_start = match w.budget.as_mut() {
                Some(b) if !total_cpu.is_zero() => b.request(now, total_cpu),
                _ => now,
            };
            g.machine.borrow_mut().run_slice(core, throttle_start, total_cpu);
            g.core_cpu.entry(core).or_default().busy += total_cpu;
            let w = &mut g.workers[worker_idx];
            if any_work || any_pending {
                w.state = WorkerState::Scheduled;
                Some(throttle_start + total_cpu)
            } else if let Some(d) = next_deadline.filter(|&d| {
                d.saturating_sub(now) <= Nanos(costs::ENGINE_SPIN_WAIT_NS)
            }) {
                // Poll-wait: stay runnable and burn the gap as spin.
                let resume = d.max(now + Nanos(1));
                w.state = WorkerState::Scheduled;
                g.cpu.spin += resume - now;
                g.core_cpu.entry(core).or_default().spin += resume - now;
                Some(resume)
            } else {
                if w.spins {
                    w.state = WorkerState::SpinningIdle { since: now };
                } else {
                    w.state = WorkerState::Blocked;
                }
                None
            }
        };

        match next {
            Some(at) => {
                let handle = self.clone();
                sim.schedule_at(at.max(now), move |sim| handle.run_worker(sim, worker_idx));
            }
            None => {
                // Far-future self-timer (pacing, shaper refill, RTO):
                // arm a framework wake so a blocked worker resumes at
                // the deadline (a wake of a running worker is a no-op).
                if let (Some(d), Some(&first)) = (next_deadline, engine_ids.first()) {
                    let handle = self.clone();
                    sim.schedule_at(d.max(now), move |sim| handle.wake(sim, first));
                }
                self.maybe_arm_idle_block(sim, worker_idx);
            }
        }
    }

    /// For compacting mode: after `idle_block` of idle spinning, the
    /// worker blocks and releases its core ("scale down to less than a
    /// full core").
    fn maybe_arm_idle_block(&self, sim: &mut Sim, worker_idx: usize) {
        let idle_block = {
            let g = self.inner.borrow();
            match g.mode {
                SchedulingMode::Compacting { idle_block, .. } if g.workers[worker_idx].spins => {
                    Some(idle_block)
                }
                _ => None,
            }
        };
        let Some(idle_block) = idle_block else { return };
        let handle = self.clone();
        let ev = sim.schedule_cancellable_in(idle_block, move |sim| {
            let mut g = handle.inner.borrow_mut();
            let now = sim.now();
            let w = &mut g.workers[worker_idx];
            if let WorkerState::SpinningIdle { since } = w.state {
                w.state = WorkerState::Blocked;
                w.spins = false;
                let core = w.core;
                g.machine.borrow_mut().set_spinning(core, false);
                g.cpu.spin += now.saturating_sub(since);
                g.core_cpu.entry(core).or_default().spin += now.saturating_sub(since);
            }
        });
        self.inner.borrow_mut().workers[worker_idx].idle_block_event = Some(ev);
    }

    /// The compacting rebalancer (§2.4): scale out on SLO violation,
    /// migrate back and compact when load subsides.
    fn rebalance(&self, sim: &mut Sim) {
        let now = sim.now();
        let slo = {
            let g = self.inner.borrow();
            match g.mode {
                SchedulingMode::Compacting { slo, .. } => slo,
                _ => return,
            }
        };

        // Scale out: find an overloaded worker with more than one
        // engine and move its most-delayed engine to an idle worker.
        let mut move_plan: Option<(usize, EngineId)> = None;
        {
            let g = self.inner.borrow();
            'outer: for (wi, w) in g.workers.iter().enumerate() {
                if w.engines.len() <= 1 {
                    continue;
                }
                let mut worst: Option<(EngineId, Nanos)> = None;
                for id in &w.engines {
                    if let Some(slot) = g.slots[id.0 as usize].as_ref() {
                        let age = slot.engine.oldest_pending_age(now);
                        if age > slo && worst.map(|(_, a)| age > a).unwrap_or(true) {
                            worst = Some((*id, age));
                        }
                    }
                }
                if let Some((id, _)) = worst {
                    move_plan = Some((wi, id));
                    break 'outer;
                }
            }
        }
        if let Some((from, id)) = move_plan {
            self.scale_out(sim, from, id);
            return; // one action per poll, like the paper's rebalancer
        }

        // Compact: merge an entirely idle secondary worker back into
        // the primary.
        let mut merge_plan: Option<usize> = None;
        {
            let g = self.inner.borrow();
            for (wi, w) in g.workers.iter().enumerate().skip(1) {
                if w.engines.is_empty() {
                    continue;
                }
                let all_idle = w.engines.iter().all(|id| {
                    g.slots[id.0 as usize]
                        .as_ref()
                        .map(|s| s.engine.pending_work() == 0)
                        .unwrap_or(true)
                });
                let primary_ok = g.workers[0].engines.iter().all(|id| {
                    g.slots[id.0 as usize]
                        .as_ref()
                        .map(|s| s.engine.oldest_pending_age(now) < slo / 2)
                        .unwrap_or(true)
                });
                if all_idle && primary_ok {
                    merge_plan = Some(wi);
                    break;
                }
            }
        }
        if let Some(wi) = merge_plan {
            let mut g = self.inner.borrow_mut();
            let engines = std::mem::take(&mut g.workers[wi].engines);
            for id in &engines {
                if let Some(slot) = g.slots[id.0 as usize].as_mut() {
                    slot.worker = 0;
                }
            }
            g.workers[0].engines.extend(engines);
            let w = &mut g.workers[wi];
            let spin_accrued = match w.state {
                WorkerState::SpinningIdle { since } => now.saturating_sub(since),
                _ => Nanos::ZERO,
            };
            let core = w.core;
            w.state = WorkerState::Blocked;
            w.spins = false;
            g.cpu.spin += spin_accrued;
            g.core_cpu.entry(core).or_default().spin += spin_accrued;
            g.machine.borrow_mut().set_spinning(core, false);
        }
    }

    /// Moves engine `id` from worker `from` to a fresh (or re-used
    /// blocked) worker and wakes it there.
    fn scale_out(&self, sim: &mut Sim, from: usize, id: EngineId) {
        {
            let mut g = self.inner.borrow_mut();
            let w = &mut g.workers[from];
            w.engines.retain(|e| *e != id);
            // Reuse a blocked empty worker or create one.
            let target = g
                .workers
                .iter()
                .position(|w| w.engines.is_empty() && w.state == WorkerState::Blocked);
            let ti = match target {
                Some(t) => t,
                None => {
                    let cores = g.machine.borrow().num_cores();
                    let core = g.next_core % cores;
                    g.next_core += 1;
                    g.workers.push(Worker {
                        engines: Vec::new(),
                        state: WorkerState::Blocked,
                        core,
                        spins: false,
                        budget: Some(MicroQuantaBudget::default_engine()),
                        idle_block_event: None,
                    });
                    g.workers.len() - 1
                }
            };
            g.workers[ti].engines.push(id);
            if let Some(slot) = g.slots[id.0 as usize].as_mut() {
                slot.worker = ti;
            }
        }
        self.wake(sim, id);
    }

    /// Posts depth-1 control work to run on the engine's worker before
    /// its next pass (the engine mailbox, §2.3). Fails with
    /// [`ControlError::Busy`] if work is already pending and
    /// [`ControlError::Unavailable`] if the engine slot is gone.
    pub fn post_to_engine(
        &self,
        sim: &mut Sim,
        id: EngineId,
        work: MailboxWork,
    ) -> Result<(), ControlError> {
        {
            let mut g = self.inner.borrow_mut();
            let slot = g
                .slots
                .get_mut(id.0 as usize)
                .and_then(|s| s.as_mut())
                .ok_or_else(|| {
                    ControlError::Unavailable(format!("engine {} removed", id.0))
                })?;
            if slot.mailbox.is_some() {
                return Err(ControlError::Busy(format!(
                    "engine {} mailbox occupied",
                    id.0
                )));
            }
            slot.mailbox = Some(work);
        }
        self.wake(sim, id);
        Ok(())
    }

    /// True when `other` is a handle to the *same* underlying group —
    /// engine ids are only meaningful within one group, so callers that
    /// key work by `(group, EngineId)` (the supervisor's quarantine
    /// path) need identity, not name equality.
    pub fn same_group(&self, other: &GroupHandle) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Runs `f` against an engine synchronously. In the real system
    /// this is a mailbox call that blocks the *control* thread only; in
    /// the simulator the control plane and engines share one thread, so
    /// it executes immediately.
    pub fn with_engine<R>(&self, id: EngineId, f: impl FnOnce(&mut dyn Engine) -> R) -> R {
        let mut g = self.inner.borrow_mut();
        let slot = g.slots[id.0 as usize]
            .as_mut()
            .expect("engine exists");
        f(slot.engine.as_mut())
    }

    /// Fallible [`GroupHandle::with_engine`]: a missing slot or a
    /// crashed/suspended engine becomes [`ControlError::Unavailable`]
    /// instead of a panic, so control RPCs racing a fault or an
    /// in-flight upgrade get a typed error the caller can retry on.
    pub fn try_with_engine<R>(
        &self,
        id: EngineId,
        f: impl FnOnce(&mut dyn Engine) -> R,
    ) -> Result<R, ControlError> {
        let mut g = self.inner.borrow_mut();
        let idx = id.0 as usize;
        if g.slots.get(idx).is_none_or(|s| s.is_none()) {
            return Err(ControlError::Unavailable(format!("engine {} removed", id.0)));
        }
        if g.crashed[idx] {
            return Err(ControlError::Unavailable(format!("engine {} crashed", id.0)));
        }
        if g.suspended[idx] {
            return Err(ControlError::Unavailable(format!(
                "engine {} suspended for upgrade",
                id.0
            )));
        }
        let slot = g.slots[idx].as_mut().expect("checked above");
        Ok(f(slot.engine.as_mut()))
    }

    /// Posts mailbox work with a retry loop: an occupied mailbox is
    /// retried with capped exponential backoff
    /// ([`costs::CONTROL_RETRY_BASE_NS`] doubling up to
    /// [`costs::CONTROL_RETRY_CAP_NS`]) until it lands or the
    /// [`costs::CONTROL_RPC_TIMEOUT_NS`] budget runs out. `on_result`
    /// fires exactly once with the outcome; `Ok` means the work is
    /// queued (it runs before the engine's next pass, which for a
    /// crashed engine is after the supervisor restarts it).
    pub fn post_with_backoff(
        &self,
        sim: &mut Sim,
        id: EngineId,
        work: MailboxWork,
        on_result: PostResult,
    ) {
        let deadline = sim.now() + Nanos(costs::CONTROL_RPC_TIMEOUT_NS);
        self.post_attempt(
            sim,
            id,
            work,
            on_result,
            deadline,
            Nanos(costs::CONTROL_RETRY_BASE_NS),
        );
    }

    fn post_attempt(
        &self,
        sim: &mut Sim,
        id: EngineId,
        work: MailboxWork,
        on_result: PostResult,
        deadline: Nanos,
        delay: Nanos,
    ) {
        enum Post {
            Gone,
            Busy,
            Landed,
        }
        let mut work = Some(work);
        let status = {
            let mut g = self.inner.borrow_mut();
            match g.slots.get_mut(id.0 as usize).and_then(|s| s.as_mut()) {
                None => Post::Gone,
                Some(slot) if slot.mailbox.is_some() => Post::Busy,
                Some(slot) => {
                    slot.mailbox = work.take();
                    Post::Landed
                }
            }
        };
        match status {
            Post::Gone => on_result(
                sim,
                Err(ControlError::Unavailable(format!("engine {} removed", id.0))),
            ),
            Post::Landed => {
                self.wake(sim, id);
                on_result(sim, Ok(()));
            }
            Post::Busy => {
                // Equal jitter on the backoff step: sleep a seeded
                // uniform draw from [delay/2, delay] so concurrent
                // retriers against the same busy mailbox decorrelate
                // instead of colliding in lockstep waves. The draw
                // comes from the group's own deterministic stream, so
                // runs stay bit-reproducible.
                let half = Nanos(delay.as_nanos() / 2);
                let jittered = {
                    let mut g = self.inner.borrow_mut();
                    half + Nanos(g.retry_rng.below(half.as_nanos() + 1))
                };
                if sim.now() + jittered > deadline {
                    on_result(
                        sim,
                        Err(ControlError::Timeout(format!(
                            "mailbox for engine {} still busy",
                            id.0
                        ))),
                    );
                    return;
                }
                let handle = self.clone();
                let Some(work) = work.take() else { return };
                let next_delay = (delay * 2).min(Nanos(costs::CONTROL_RETRY_CAP_NS));
                sim.schedule_in(jittered, move |sim| {
                    handle.post_attempt(sim, id, work, on_result, deadline, next_delay);
                });
            }
        }
    }

    /// Suspends an engine (upgrade blackout start): it is no longer
    /// scheduled and its detach hook runs (dropping NIC filters).
    pub fn suspend_engine(&self, sim: &mut Sim, id: EngineId) {
        let engine = {
            let mut g = self.inner.borrow_mut();
            if g.slots[id.0 as usize].is_none() {
                return;
            }
            g.suspended[id.0 as usize] = true;
            std::mem::replace(
                &mut g.slots[id.0 as usize].as_mut().expect("checked").engine,
                Box::new(crate::engine::CountingEngine::new("detached", Nanos(0))),
            )
        };
        // Detach outside the borrow: the hook may drive the simulator.
        let mut engine = engine;
        engine.detach(sim);
        let mut g = self.inner.borrow_mut();
        g.slots[id.0 as usize].as_mut().expect("checked").engine = engine;
    }

    /// Replaces a suspended engine with its new-version successor and
    /// resumes scheduling (upgrade blackout end). Also clears any crash
    /// or stall flag, so the same path serves supervisor recovery.
    pub fn resume_engine(&self, sim: &mut Sim, id: EngineId, engine: Box<dyn Engine>) {
        let mut engine = engine;
        // Re-attach outside the borrow: the hook may drive the NIC.
        engine.attach(sim);
        {
            let mut g = self.inner.borrow_mut();
            let slot = g.slots[id.0 as usize].as_mut().expect("engine exists");
            slot.engine = engine;
            g.suspended[id.0 as usize] = false;
            g.crashed[id.0 as usize] = false;
            g.stalled_until[id.0 as usize] = Nanos::ZERO;
            // A restart replaces the degraded process: healthy again.
            g.slowdown[id.0 as usize] = 1.0;
        }
        self.wake(sim, id);
    }

    /// Destroys an engine in place — the fault-injection model of an
    /// engine panicking or its worker thread dying. Its in-memory state
    /// is lost (the slot holds a dead placeholder) and it is never
    /// scheduled again until [`GroupHandle::resume_engine`] installs a
    /// successor rebuilt from a checkpoint.
    pub fn kill_engine(&self, id: EngineId) {
        let mut g = self.inner.borrow_mut();
        // Ids that were never allocated are a no-op, so over-approximate
        // (e.g. randomized) fault plans can't panic the group.
        if g.slots.get(id.0 as usize).is_some_and(|s| s.is_some()) {
            g.crashed[id.0 as usize] = true;
            let slot = g.slots[id.0 as usize].as_mut().expect("checked");
            // Drop the engine: a crash loses all in-memory state.
            slot.engine = Box::new(crate::engine::CountingEngine::new("crashed", Nanos(0)));
            slot.mailbox = None;
        }
    }

    /// Degrades an engine's efficiency by `factor` (>= 1.0): every pass
    /// burns `factor`× the CPU, the gray-failure model of a process
    /// that is alive and making progress but pathologically slow (lock
    /// contention, a sick core, thermal throttling). Unlike a wedge the
    /// engine still heartbeats, so only latency-based health scoring —
    /// not liveness checks — can see it. `factor <= 1.0` heals.
    /// Unknown ids are a no-op so over-approximate fault plans can't
    /// panic the group.
    pub fn slow_engine(&self, id: EngineId, factor: f64) {
        let mut g = self.inner.borrow_mut();
        if let Some(f) = g.slowdown.get_mut(id.0 as usize) {
            *f = factor.max(1.0);
        }
    }

    /// The engine's current slowdown factor (1.0 = healthy), or `None`
    /// for an unknown id.
    pub fn slowdown_factor(&self, id: EngineId) -> Option<f64> {
        self.inner.borrow().slowdown.get(id.0 as usize).copied()
    }

    /// Wedges an engine for `duration`: it stays resident but makes no
    /// progress (models a livelock or a stuck syscall). Pending work
    /// accumulates and its heartbeat stops, which is what supervisor
    /// wedge detection keys on. The engine resumes by itself when the
    /// stall lifts unless the supervisor restarts it first.
    pub fn stall_engine(&self, sim: &mut Sim, id: EngineId, duration: Nanos) {
        let until = sim.now() + duration;
        {
            let mut g = self.inner.borrow_mut();
            if g.slots.get(id.0 as usize).is_none_or(|s| s.is_none()) {
                return;
            }
            let slot = &mut g.stalled_until[id.0 as usize];
            *slot = (*slot).max(until);
        }
        // Self-resume once the wedge clears (a real livelock may break).
        let handle = self.clone();
        sim.schedule_at(until, move |sim| handle.wake(sim, id));
    }

    /// A liveness snapshot of one engine, or `None` if the slot was
    /// removed. Crashed engines report zero pending work because their
    /// state is gone; the `crashed` flag is the signal.
    pub fn engine_health(&self, id: EngineId) -> Option<EngineHealth> {
        let g = self.inner.borrow();
        let slot = g.slots.get(id.0 as usize)?.as_ref()?;
        Some(EngineHealth {
            pending: if g.crashed[id.0 as usize] {
                0
            } else {
                slot.engine.pending_work() as u64
            },
            last_pass: slot.last_pass,
            crashed: g.crashed[id.0 as usize],
            suspended: g.suspended[id.0 as usize],
        })
    }

    /// Takes a suspended engine out entirely (for state serialization
    /// by the upgrade orchestrator). The slot stays reserved.
    pub fn take_engine(&self, id: EngineId) -> Option<Box<dyn Engine>> {
        let mut g = self.inner.borrow_mut();
        assert!(
            g.suspended[id.0 as usize],
            "taking a running engine; suspend it first"
        );
        g.slots[id.0 as usize]
            .take()
            .map(|s| {
                g.slots[id.0 as usize] = Some(Slot {
                    engine: Box::new(crate::engine::CountingEngine::new("migrating", Nanos(0))),
                    worker: s.worker,
                    mailbox: None,
                    last_report: s.last_report.clone(),
                    last_pass: s.last_pass,
                });
                s.engine
            })
    }

    /// CPU consumption snapshot, flushing idle-spin accrual up to `now`.
    pub fn cpu(&self, now: Nanos) -> GroupCpu {
        let inner = &mut *self.inner.borrow_mut();
        let core_cpu = &mut inner.core_cpu;
        let mut accrued = Nanos::ZERO;
        for w in &mut inner.workers {
            if let WorkerState::SpinningIdle { since } = w.state {
                if now > since {
                    accrued += now - since;
                    core_cpu.entry(w.core).or_default().spin += now - since;
                    w.state = WorkerState::SpinningIdle { since: now };
                }
            }
        }
        inner.cpu.spin += accrued;
        inner.cpu
    }

    /// Per-core CPU split (busy / spin / wake) up to `now`, flushing
    /// idle-spin accrual first. Deterministic order (ascending core id).
    /// Invariant: summing [`CoreCpu::total`] over the result equals
    /// [`GroupHandle::cpu`]`.total()` exactly — every nanosecond the
    /// group burns is charged to exactly one core.
    pub fn core_cpu(&self, now: Nanos) -> Vec<(CoreId, CoreCpu)> {
        let _ = self.cpu(now); // flush spin accrual into the per-core map
        self.inner
            .borrow()
            .core_cpu
            .iter()
            .map(|(&c, &v)| (c, v))
            .collect()
    }

    /// Cumulative engine-pass CPU per engine slot (slowdown-inflated,
    /// like the group totals). Sums exactly to [`GroupCpu::engine`].
    pub fn engine_cpu(&self) -> Vec<(EngineId, Nanos)> {
        self.inner
            .borrow()
            .engine_cpu
            .iter()
            .enumerate()
            .map(|(i, &ns)| (EngineId(i as u32), ns))
            .collect()
    }

    /// Total CPU-time the MicroQuanta budgets deferred across all
    /// workers (zero in dedicated mode, which runs unbudgeted).
    pub fn throttled_total(&self) -> Nanos {
        self.inner
            .borrow()
            .workers
            .iter()
            .filter_map(|w| w.budget.as_ref())
            .map(|b| b.throttled_total)
            .fold(Nanos::ZERO, |a, b| a + b)
    }

    /// Number of workers currently spinning or scheduled (≈ cores in
    /// active use); diagnostic for the compacting scheduler tests.
    pub fn active_workers(&self) -> usize {
        self.inner
            .borrow()
            .workers
            .iter()
            .filter(|w| w.state != WorkerState::Blocked)
            .count()
    }

    /// Total workers ever created.
    pub fn worker_count(&self) -> usize {
        self.inner.borrow().workers.len()
    }

    /// Snapshot of the group's scheduling-delay histogram: one sample
    /// per wake that had to schedule a worker (spin pickup vs interrupt
    /// wake latency). Cumulative; diff two snapshots for an interval.
    pub fn sched_delay_histogram(&self) -> Histogram {
        self.inner.borrow().sched_delay.clone()
    }

    /// Stable label of the group's scheduling mode, for metric keys.
    pub fn mode_label(&self) -> &'static str {
        match self.inner.borrow().mode {
            SchedulingMode::Dedicated { .. } => "dedicated",
            SchedulingMode::Spreading => "spreading",
            SchedulingMode::Compacting { .. } => "compacting",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CountingEngine;

    fn machine() -> MachineHandle {
        Rc::new(RefCell::new(Machine::new(8, 1)))
    }

    fn counting_group(mode: SchedulingMode) -> (GroupHandle, EngineId) {
        let g = GroupHandle::new(
            GroupConfig {
                name: "test".into(),
                mode,
                class: None,
            },
            machine(),
            CpuAccountant::new(),
        );
        let id = g.add_engine(Box::new(CountingEngine::new("e0", Nanos(500))));
        (g, id)
    }

    fn inject(g: &GroupHandle, id: EngineId, now: Nanos, n: usize) {
        g.with_engine(id, |e| {
            let e = e
                .as_any()
                .downcast_mut::<CountingEngine>()
                .expect("tests only build CountingEngine");
            for _ in 0..n {
                e.inject(now);
            }
        });
    }

    fn processed(g: &GroupHandle, id: EngineId) -> u64 {
        g.with_engine(id, |e| {
            e.as_any()
                .downcast_mut::<CountingEngine>()
                .expect("tests only build CountingEngine")
                .processed
        })
    }

    #[test]
    fn dedicated_mode_processes_work() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Dedicated { cores: vec![0] });
        g.start(&mut sim);
        inject(&g, id, sim.now(), 40);
        g.wake(&mut sim, id);
        sim.run();
        assert_eq!(processed(&g, id), 40);
        let cpu = g.cpu(sim.now());
        assert!(cpu.engine > Nanos(40 * 500), "engine CPU {:?}", cpu);
        assert_eq!(cpu.wake_overhead, Nanos::ZERO, "spinning never pays wakes");
    }

    #[test]
    fn spreading_mode_pays_wake_overhead() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        g.start(&mut sim);
        inject(&g, id, sim.now(), 5);
        g.wake(&mut sim, id);
        sim.run();
        assert_eq!(processed(&g, id), 5);
        let cpu = g.cpu(sim.now());
        assert!(cpu.wake_overhead > Nanos::ZERO);
        assert_eq!(cpu.spin, Nanos::ZERO, "blocked workers never spin");
    }

    #[test]
    fn spreading_gives_each_engine_a_worker() {
        let (g, _) = counting_group(SchedulingMode::Spreading);
        g.add_engine(Box::new(CountingEngine::new("e1", Nanos(100))));
        g.add_engine(Box::new(CountingEngine::new("e2", Nanos(100))));
        assert_eq!(g.worker_count(), 3);
    }

    #[test]
    fn dedicated_fair_shares_when_core_constrained() {
        let mut sim = Sim::new();
        let g = GroupHandle::new(
            GroupConfig {
                name: "fair".into(),
                mode: SchedulingMode::Dedicated { cores: vec![0, 1] },
                class: None,
            },
            machine(),
            CpuAccountant::new(),
        );
        let ids: Vec<EngineId> = (0..4)
            .map(|i| g.add_engine(Box::new(CountingEngine::new(format!("e{i}"), Nanos(100)))))
            .collect();
        assert_eq!(g.worker_count(), 2, "4 engines share 2 cores");
        g.start(&mut sim);
        for id in &ids {
            inject(&g, *id, sim.now(), 10);
            g.wake(&mut sim, *id);
        }
        sim.run();
        for id in &ids {
            assert_eq!(processed(&g, *id), 10);
        }
    }

    #[test]
    fn compacting_starts_on_one_worker_and_scales_out() {
        let mut sim = Sim::new();
        let g = GroupHandle::new(
            GroupConfig {
                name: "compact".into(),
                mode: SchedulingMode::Compacting {
                    slo: Nanos::from_micros(5),
                    rebalance_poll: Nanos::from_micros(10),
                    idle_block: Nanos::from_millis(50),
                },
                class: None,
            },
            machine(),
            CpuAccountant::new(),
        );
        // Two heavy engines on the primary: per-item cost is large so
        // queueing delay blows through the SLO.
        let a = g.add_engine(Box::new(CountingEngine::new("a", Nanos::from_micros(20))));
        let b = g.add_engine(Box::new(CountingEngine::new("b", Nanos::from_micros(20))));
        assert_eq!(g.worker_count(), 1);
        g.start(&mut sim);
        // Sustained load on both engines.
        for round in 0..50u64 {
            let at = Nanos::from_micros(round * 20);
            let (g2, a2, b2) = (g.clone(), a, b);
            sim.schedule_at(at, move |sim| {
                inject(&g2, a2, sim.now(), 8);
                inject(&g2, b2, sim.now(), 8);
                g2.wake(sim, a2);
                g2.wake(sim, b2);
            });
        }
        sim.run_until(Nanos::from_millis(10));
        g.stop();
        sim.run();
        assert!(g.worker_count() >= 2, "rebalancer should have scaled out");
        assert_eq!(processed(&g, a), 400);
        assert_eq!(processed(&g, b), 400);
    }

    #[test]
    fn compacting_blocks_after_idle_and_rewakes() {
        let mut sim = Sim::new();
        let g = GroupHandle::new(
            GroupConfig {
                name: "idle".into(),
                mode: SchedulingMode::Compacting {
                    slo: Nanos::from_micros(50),
                    rebalance_poll: Nanos::from_micros(10),
                    idle_block: Nanos::from_micros(100),
                },
                class: None,
            },
            machine(),
            CpuAccountant::new(),
        );
        let id = g.add_engine(Box::new(CountingEngine::new("e", Nanos(500))));
        g.start(&mut sim);
        inject(&g, id, Nanos::ZERO, 1);
        g.wake(&mut sim, id);
        sim.run_until(Nanos::from_millis(1));
        // Long idle: the primary should have blocked, capping spin CPU.
        let cpu_at_1ms = g.cpu(sim.now());
        assert!(
            cpu_at_1ms.spin < Nanos::from_micros(300),
            "spin CPU {:?} should be bounded by idle_block",
            cpu_at_1ms.spin
        );
        assert_eq!(g.active_workers(), 0, "worker blocked after idling");
        // Work arrives again: the blocked worker wakes and processes.
        inject(&g, id, sim.now(), 3);
        g.wake(&mut sim, id);
        sim.run_until(Nanos::from_millis(2));
        assert_eq!(processed(&g, id), 4);
    }

    #[test]
    fn per_core_attribution_sums_to_group_totals_in_every_mode() {
        let modes = [
            SchedulingMode::Dedicated { cores: vec![0, 1] },
            SchedulingMode::Spreading,
            SchedulingMode::Compacting {
                slo: Nanos::from_micros(5),
                rebalance_poll: Nanos::from_micros(10),
                idle_block: Nanos::from_micros(100),
            },
        ];
        for mode in modes {
            let mut sim = Sim::new();
            let g = GroupHandle::new(
                GroupConfig {
                    name: "attr".into(),
                    mode: mode.clone(),
                    class: None,
                },
                machine(),
                CpuAccountant::new(),
            );
            let a = g.add_engine(Box::new(CountingEngine::new("a", Nanos(800))));
            let b = g.add_engine(Box::new(CountingEngine::new("b", Nanos(800))));
            g.start(&mut sim);
            for round in 0..30u64 {
                let at = Nanos::from_micros(round * 15);
                let (g2, a2, b2) = (g.clone(), a, b);
                sim.schedule_at(at, move |sim| {
                    inject(&g2, a2, sim.now(), 4);
                    inject(&g2, b2, sim.now(), 4);
                    g2.wake(sim, a2);
                    g2.wake(sim, b2);
                });
            }
            sim.run_until(Nanos::from_millis(2));
            g.stop();
            sim.run();
            let now = sim.now();
            let total = g.cpu(now);
            let per_core = g.core_cpu(now);
            let core_sum: Nanos = per_core
                .iter()
                .map(|(_, c)| c.total())
                .fold(Nanos::ZERO, |x, y| x + y);
            assert_eq!(
                core_sum,
                total.total(),
                "{}: per-core CPU must sum to the group total exactly",
                g.mode_label()
            );
            let busy_sum: Nanos = per_core
                .iter()
                .map(|(_, c)| c.busy)
                .fold(Nanos::ZERO, |x, y| x + y);
            assert_eq!(busy_sum, total.engine, "{}: busy split", g.mode_label());
            let engine_sum: Nanos = g
                .engine_cpu()
                .iter()
                .map(|(_, ns)| *ns)
                .fold(Nanos::ZERO, |x, y| x + y);
            assert_eq!(
                engine_sum, total.engine,
                "{}: per-engine CPU must sum to GroupCpu::engine",
                g.mode_label()
            );
            assert_eq!(processed(&g, a), 120, "{}", g.mode_label());
            assert_eq!(processed(&g, b), 120, "{}", g.mode_label());
        }
    }

    #[test]
    fn mailbox_posts_run_before_next_pass() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        g.start(&mut sim);
        g.post_to_engine(
            &mut sim,
            id,
            Box::new(|e: &mut dyn Engine| {
                let e = e
                    .as_any()
                    .downcast_mut::<CountingEngine>()
                    .expect("tests only build CountingEngine");
                e.inject(Nanos::ZERO);
                e.inject(Nanos::ZERO);
            }),
        )
        .unwrap();
        sim.run();
        assert_eq!(processed(&g, id), 2);
    }

    #[test]
    fn post_to_out_of_range_engine_is_unavailable_not_a_panic() {
        let mut sim = Sim::new();
        let (g, _id) = counting_group(SchedulingMode::Spreading);
        let r = g.post_to_engine(&mut sim, EngineId(42), Box::new(|_| {}));
        assert!(matches!(r, Err(ControlError::Unavailable(_))));
    }

    #[test]
    fn mailbox_is_depth_one() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        // Don't start: posts stack up un-serviced.
        let first = g.post_to_engine(&mut sim, id, Box::new(|_| {}));
        assert!(first.is_ok());
        let second = g.post_to_engine(&mut sim, id, Box::new(|_| {}));
        assert!(second.is_err(), "depth-1 mailbox must reject");
    }

    #[test]
    fn busy_mailbox_rpc_retries_until_it_lands() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        // Occupy the mailbox before the group runs, then start the
        // group a while later: the backoff RPC must keep retrying until
        // the first post drains, then land.
        g.post_to_engine(&mut sim, id, Box::new(|_| {})).unwrap();
        let result: Rc<RefCell<Option<Result<(), ControlError>>>> =
            Rc::new(RefCell::new(None));
        let slot = result.clone();
        g.post_with_backoff(
            &mut sim,
            id,
            Box::new(|e: &mut dyn Engine| {
                e.as_any()
                    .downcast_mut::<CountingEngine>()
                    .expect("tests only build CountingEngine")
                    .inject(Nanos::ZERO);
            }),
            Box::new(move |_sim, r| {
                *slot.borrow_mut() = Some(r);
            }),
        );
        assert!(result.borrow().is_none(), "first attempt finds mailbox busy");
        let g2 = g.clone();
        sim.schedule_in(Nanos::from_micros(100), move |sim| g2.start(sim));
        sim.run();
        assert_eq!(*result.borrow(), Some(Ok(())));
        assert_eq!(processed(&g, id), 1, "retried post ran on the engine");
    }

    #[test]
    fn mailbox_rpc_times_out_against_wedged_mailbox() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        g.start(&mut sim);
        // A crashed engine never services its mailbox: the first post
        // wedges it and the second must give up with a typed timeout.
        g.kill_engine(id);
        g.post_to_engine(&mut sim, id, Box::new(|_| {})).unwrap();
        let result: Rc<RefCell<Option<Result<(), ControlError>>>> =
            Rc::new(RefCell::new(None));
        let slot = result.clone();
        g.post_with_backoff(
            &mut sim,
            id,
            Box::new(|_| {}),
            Box::new(move |_sim, r| {
                *slot.borrow_mut() = Some(r);
            }),
        );
        sim.run();
        assert!(
            matches!(*result.borrow(), Some(Err(ControlError::Timeout(_)))),
            "expected timeout, got {:?}",
            result.borrow()
        );
        // Backoff is capped: the whole retry loop fits in the RPC
        // budget plus one capped delay.
        assert!(
            sim.now()
                <= Nanos(costs::CONTROL_RPC_TIMEOUT_NS) + Nanos(costs::CONTROL_RETRY_CAP_NS),
            "retries ran past the budget: {}",
            sim.now()
        );
    }

    #[test]
    fn backoff_retries_are_jittered_and_deterministic() {
        fn giveup_times() -> (Nanos, Nanos) {
            let mut sim = Sim::new();
            let (g, id) = counting_group(SchedulingMode::Spreading);
            g.start(&mut sim);
            // A crashed engine never drains its mailbox: both RPCs
            // retry against permanent Busy until the budget expires.
            g.kill_engine(id);
            g.post_to_engine(&mut sim, id, Box::new(|_| {})).unwrap();
            let t1 = Rc::new(RefCell::new(Nanos::ZERO));
            let t2 = Rc::new(RefCell::new(Nanos::ZERO));
            let (s1, s2) = (t1.clone(), t2.clone());
            g.post_with_backoff(
                &mut sim,
                id,
                Box::new(|_| {}),
                Box::new(move |sim, _| *s1.borrow_mut() = sim.now()),
            );
            g.post_with_backoff(
                &mut sim,
                id,
                Box::new(|_| {}),
                Box::new(move |sim, _| *s2.borrow_mut() = sim.now()),
            );
            sim.run();
            let out = (*t1.borrow(), *t2.borrow());
            out
        }
        let (a1, a2) = giveup_times();
        assert!(!a1.is_zero() && !a2.is_zero(), "both RPCs must conclude");
        // Without jitter two concurrent retriers launched at the same
        // instant walk the identical backoff ladder and give up at the
        // exact same time — the synchronized-wave pathology. Seeded
        // jitter decorrelates them...
        assert_ne!(a1, a2, "jitter must desynchronize concurrent retriers");
        // ...while staying deterministic: a rerun is bit-identical.
        assert_eq!((a1, a2), giveup_times());
    }

    #[test]
    fn slowed_engine_burns_scaled_cpu_and_restart_heals() {
        fn engine_cpu(factor: Option<f64>) -> Nanos {
            let mut sim = Sim::new();
            let (g, id) = counting_group(SchedulingMode::Dedicated { cores: vec![0] });
            if let Some(f) = factor {
                g.slow_engine(id, f);
            }
            g.start(&mut sim);
            inject(&g, id, sim.now(), 20);
            g.wake(&mut sim, id);
            sim.run();
            assert_eq!(processed(&g, id), 20, "slowdown must not drop work");
            g.cpu(sim.now()).engine
        }
        let healthy = engine_cpu(None);
        let slowed = engine_cpu(Some(4.0));
        assert!(
            slowed >= healthy * 3,
            "4x slowdown should inflate engine CPU: healthy {healthy}, slowed {slowed}"
        );

        // A supervisor restart replaces the degraded process: the
        // factor resets to healthy.
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        g.slow_engine(id, 4.0);
        assert_eq!(g.slowdown_factor(id), Some(4.0));
        g.suspend_engine(&mut sim, id);
        let old = g.take_engine(id).expect("suspended");
        g.resume_engine(&mut sim, id, old);
        assert_eq!(g.slowdown_factor(id), Some(1.0));
        // Unknown ids are a no-op (over-approximate fault plans).
        g.slow_engine(EngineId(99), 7.0);
        assert_eq!(g.slowdown_factor(EngineId(99)), None);
    }

    #[test]
    fn try_with_engine_reports_crashed_and_suspended() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        g.start(&mut sim);
        assert!(g.try_with_engine(id, |e| e.name().to_string()).is_ok());
        g.suspend_engine(&mut sim, id);
        assert!(matches!(
            g.try_with_engine(id, |_| ()),
            Err(ControlError::Unavailable(_))
        ));
        let old = g.take_engine(id).expect("suspended");
        g.resume_engine(&mut sim, id, old);
        assert!(g.try_with_engine(id, |_| ()).is_ok());
        g.kill_engine(id);
        assert!(matches!(
            g.try_with_engine(id, |_| ()),
            Err(ControlError::Unavailable(_))
        ));
    }

    #[test]
    fn fault_ops_on_unknown_engine_ids_are_noops() {
        // Over-approximate fault plans may name engines that were never
        // created; the group must absorb those without panicking.
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        g.start(&mut sim);
        let bogus = EngineId(id.0 + 41);
        g.kill_engine(bogus);
        g.stall_engine(&mut sim, bogus, Nanos::from_millis(1));
        assert!(g.engine_health(bogus).is_none());
        // The real engine is untouched.
        assert!(!g.engine_health(id).expect("real engine").crashed);
        assert!(g.try_with_engine(id, |_| ()).is_ok());
    }

    #[test]
    fn suspend_stops_scheduling_and_resume_restores() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Dedicated { cores: vec![0] });
        g.start(&mut sim);
        g.suspend_engine(&mut sim, id);
        assert!(g.with_engine(id, |e| {
            e.as_any()
                .downcast_mut::<CountingEngine>()
                .expect("tests only build CountingEngine")
                .is_detached()
        }));
        inject(&g, id, sim.now(), 5);
        g.wake(&mut sim, id);
        sim.run();
        assert_eq!(processed(&g, id), 0, "suspended engine must not run");
        // Take state out, build "new version", resume.
        let mut old = g.take_engine(id).expect("suspended engine");
        let _state = old.serialize_state();
        let mut new_engine = CountingEngine::new("e0-v2", Nanos(500));
        for _ in 0..5 {
            new_engine.inject(sim.now());
        }
        g.resume_engine(&mut sim, id, Box::new(new_engine));
        sim.run();
        assert_eq!(processed(&g, id), 5);
    }

    #[test]
    fn killed_engine_stops_and_resume_revives() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Dedicated { cores: vec![0] });
        g.start(&mut sim);
        inject(&g, id, sim.now(), 3);
        g.wake(&mut sim, id);
        sim.run();
        assert_eq!(processed(&g, id), 3);
        g.kill_engine(id);
        let health = g.engine_health(id).expect("slot kept");
        assert!(health.crashed);
        // Work and wakes against the corpse do nothing.
        g.wake(&mut sim, id);
        sim.run();
        assert_eq!(processed(&g, id), 0, "crashed engine lost its state");
        // Supervisor-style revival: install a successor and resume.
        let mut revived = CountingEngine::new("e0-r", Nanos(500));
        revived.inject(sim.now());
        g.resume_engine(&mut sim, id, Box::new(revived));
        assert!(!g.engine_health(id).expect("slot kept").crashed);
        sim.run();
        assert_eq!(processed(&g, id), 1);
    }

    #[test]
    fn stalled_engine_stops_heartbeat_then_self_resumes() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Dedicated { cores: vec![0] });
        g.start(&mut sim);
        inject(&g, id, sim.now(), 2);
        g.wake(&mut sim, id);
        sim.run();
        let passed_at = g.engine_health(id).expect("slot").last_pass;
        // Wedge for 1ms, then inject more work mid-stall.
        g.stall_engine(&mut sim, id, Nanos::from_millis(1));
        inject(&g, id, sim.now(), 4);
        g.wake(&mut sim, id);
        sim.run_until(Nanos::from_micros(500));
        let mid = g.engine_health(id).expect("slot");
        assert_eq!(mid.last_pass, passed_at, "no heartbeat progress while wedged");
        assert!(mid.pending >= 4, "work piles up on a wedged engine");
        assert_eq!(processed(&g, id), 2);
        // Stall lifts: the self-wake drains the backlog.
        sim.run_until(Nanos::from_millis(2));
        sim.run();
        assert_eq!(processed(&g, id), 6);
        assert!(g.engine_health(id).expect("slot").last_pass > passed_at);
    }

    #[test]
    fn wake_handle_defers_and_wakes() {
        let mut sim = Sim::new();
        let (g, id) = counting_group(SchedulingMode::Spreading);
        g.start(&mut sim);
        inject(&g, id, sim.now(), 1);
        let wake = g.wake_handle(id);
        wake(&mut sim);
        sim.run();
        assert_eq!(processed(&g, id), 1);
    }

    #[test]
    fn cpu_charged_to_engine_container() {
        let mut sim = Sim::new();
        let acct = CpuAccountant::new();
        let g = GroupHandle::new(
            GroupConfig {
                name: "acct".into(),
                mode: SchedulingMode::Spreading,
                class: None,
            },
            machine(),
            acct.clone(),
        );
        let id = g.add_engine(Box::new(CountingEngine::new("e", Nanos(500))));
        g.start(&mut sim);
        inject(&g, id, sim.now(), 4);
        g.wake(&mut sim, id);
        sim.run();
        // CountingEngine charges to the default "snap-system" container.
        assert!(acct.usage("snap-system") >= 2_000);
    }
}
