//! Engine supervision: checkpoints, liveness monitoring, and restart.
//!
//! Snap's unit of failure containment is the engine: "engines are
//! stateful, single-threaded tasks" (§2.2), so a crashed or wedged
//! engine takes down only its own sessions, and the serialization
//! machinery built for transparent upgrades (§4) doubles as a
//! checkpoint format. The [`Supervisor`] closes the loop:
//!
//! * **Checkpoints** — every `checkpoint_interval` the supervisor asks
//!   each healthy watched engine for [`Engine::serialize_state`] and
//!   keeps the latest snapshot (the same intermediate format upgrades
//!   use, so one serializer serves both paths).
//! * **Liveness** — every `health_poll` it samples
//!   [`GroupHandle::engine_health`]: a `crashed` flag means the engine
//!   process died; pending work with no completed run pass for longer
//!   than `wedge_threshold` means the engine is wedged (livelocked).
//! * **Restart** — a dead or wedged engine is rebuilt from its last
//!   checkpoint through the [`RestartFactory`] after `restart_cost` of
//!   blackout (the same detach/re-attach cost an upgrade pays), then
//!   resumed with its sessions re-injected. Anything that happened
//!   after the checkpoint is lost on the engine side; reliable
//!   transports above (Pony Express's SACK/retransmission machinery)
//!   resynchronize the flows, so applications observe a latency blip,
//!   not data loss.

use std::cell::RefCell;
use std::rc::Rc;

use snap_sim::costs;
use snap_sim::{Nanos, Sim};

use crate::engine::{Engine, EngineId};
use crate::group::GroupHandle;

/// Rebuilds an engine from checkpointed state. Unlike the upgrade
/// path's one-shot factory this is reusable: an engine may crash more
/// than once.
pub type RestartFactory = Rc<dyn Fn(Vec<u8>, &mut Sim) -> Box<dyn Engine>>;

/// Supervisor tuning knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How often healthy engines are checkpointed.
    pub checkpoint_interval: Nanos,
    /// How often engine health is sampled.
    pub health_poll: Nanos,
    /// Pending work older than this with no completed run pass marks
    /// the engine wedged.
    pub wedge_threshold: Nanos,
    /// Blackout paid to rebuild an engine from a checkpoint (detach,
    /// deserialize, re-attach) — the analogue of an upgrade blackout.
    pub restart_cost: Nanos,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            checkpoint_interval: Nanos::from_millis(10),
            health_poll: Nanos::from_millis(1),
            wedge_threshold: Nanos::from_millis(5),
            restart_cost: Nanos(costs::UPGRADE_FIXED_BLACKOUT_NS),
        }
    }
}

/// What the supervisor has done so far.
#[derive(Debug, Clone, Default)]
pub struct SupervisorReport {
    /// Checkpoints taken across all watched engines.
    pub checkpoints: u64,
    /// Restarts triggered by a crashed engine.
    pub crash_restarts: u64,
    /// Restarts triggered by wedge detection.
    pub wedge_restarts: u64,
    /// Proactive restarts requested by an external health verdict
    /// (gray-failure quarantine).
    pub quarantine_restarts: u64,
}

impl SupervisorReport {
    /// Total restarts of any kind.
    pub fn restarts(&self) -> u64 {
        self.crash_restarts + self.wedge_restarts + self.quarantine_restarts
    }
}

struct Watched {
    group: GroupHandle,
    id: EngineId,
    factory: RestartFactory,
    /// Latest checkpoint (taken at watch time, then periodically).
    checkpoint: Vec<u8>,
    /// When the checkpoint was taken.
    checkpoint_at: Nanos,
    /// A restart is in flight; don't checkpoint or re-trigger.
    restarting: bool,
    /// When the last restart completed; suppresses wedge detection
    /// until the revived engine has had a chance to run.
    last_restart: Nanos,
}

struct SupervisorInner {
    cfg: SupervisorConfig,
    watched: Vec<Watched>,
    report: SupervisorReport,
    restart_log: Vec<RestartRecord>,
    started: bool,
    stopped: bool,
}

/// Why an engine was restarted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartKind {
    /// The engine's thread died (crash flag set).
    Crash,
    /// Pending work aged past the wedge threshold with no progress.
    Wedge,
    /// An external health monitor judged the engine gray (alive but
    /// degraded) and asked for a proactive rebuild.
    Quarantine,
}

/// One restart, with its blackout window — the supervisor-side analogue
/// of an upgrade's per-engine blackout record (Fig. 9). Telemetry polls
/// [`Supervisor::restart_log`] to build blackout histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartRecord {
    /// The restarted engine.
    pub id: EngineId,
    /// Crash or wedge.
    pub kind: RestartKind,
    /// When the failure was detected (blackout start).
    pub detected: Nanos,
    /// When the revived engine resumed; `None` while in flight.
    pub resumed: Option<Nanos>,
}

impl RestartRecord {
    /// Blackout duration, once the restart has completed.
    pub fn blackout(&self) -> Option<Nanos> {
        self.resumed.map(|r| r.saturating_sub(self.detected))
    }
}

/// Cloneable handle to the supervision loop.
#[derive(Clone)]
pub struct Supervisor {
    inner: Rc<RefCell<SupervisorInner>>,
}

impl Supervisor {
    /// Creates a supervisor with the given tuning.
    pub fn new(cfg: SupervisorConfig) -> Self {
        Supervisor {
            inner: Rc::new(RefCell::new(SupervisorInner {
                cfg,
                watched: Vec::new(),
                report: SupervisorReport::default(),
                restart_log: Vec::new(),
                started: false,
                stopped: false,
            })),
        }
    }

    /// Registers an engine for supervision and takes its first
    /// checkpoint immediately, so a restart always has state to
    /// recover from even before the first periodic checkpoint.
    pub fn watch(&self, sim: &mut Sim, group: GroupHandle, id: EngineId, factory: RestartFactory) {
        let checkpoint = group.with_engine(id, |e| e.serialize_state());
        let mut inner = self.inner.borrow_mut();
        inner.report.checkpoints += 1;
        inner.watched.push(Watched {
            group,
            id,
            factory,
            checkpoint,
            checkpoint_at: sim.now(),
            restarting: false,
            last_restart: Nanos::ZERO,
        });
    }

    /// Starts the checkpoint and health-poll loops. Idempotent.
    pub fn start(&self, sim: &mut Sim) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.started {
                return;
            }
            inner.started = true;
        }
        let (ckpt, poll) = {
            let inner = self.inner.borrow();
            (inner.cfg.checkpoint_interval, inner.cfg.health_poll)
        };
        let handle = self.clone();
        snap_sim::event::every(sim, sim.now() + ckpt, ckpt, move |sim| {
            if handle.inner.borrow().stopped {
                return false;
            }
            handle.checkpoint_pass(sim);
            true
        });
        let handle = self.clone();
        snap_sim::event::every(sim, sim.now() + poll, poll, move |sim| {
            if handle.inner.borrow().stopped {
                return false;
            }
            handle.health_pass(sim);
            true
        });
    }

    /// Stops both loops so a drained simulation can terminate.
    pub fn stop(&self) {
        self.inner.borrow_mut().stopped = true;
    }

    /// Activity counters snapshot.
    pub fn report(&self) -> SupervisorReport {
        self.inner.borrow().report.clone()
    }

    /// Every restart so far, in detection order. Completed entries have
    /// `resumed` set; in-flight ones don't yet.
    pub fn restart_log(&self) -> Vec<RestartRecord> {
        self.inner.borrow().restart_log.clone()
    }

    /// Age of the most recent checkpoint of `id`'s watch entry, if any.
    pub fn checkpoint_age(&self, id: EngineId, now: Nanos) -> Option<Nanos> {
        let inner = self.inner.borrow();
        inner
            .watched
            .iter()
            .find(|w| w.id == id)
            .map(|w| now.saturating_sub(w.checkpoint_at))
    }

    /// Proactively restarts a watched engine on an external health
    /// verdict: the engine is alive (so the liveness loop will never
    /// act) but a gray-failure detector judged it degraded. The engine
    /// is rebuilt from its last checkpoint exactly like a wedge
    /// restart. Returns `false` if `(group, id)` is not watched, or a
    /// restart is already in flight, or the engine is suspended (an
    /// upgrade owns it).
    pub fn quarantine(&self, sim: &mut Sim, group: &GroupHandle, id: EngineId) -> bool {
        let idx = {
            let inner = self.inner.borrow();
            inner.watched.iter().position(|w| {
                w.id == id
                    && w.group.same_group(group)
                    && !w.restarting
                    && w.group
                        .engine_health(w.id)
                        .map(|h| !h.suspended)
                        .unwrap_or(false)
            })
        };
        let Some(i) = idx else { return false };
        self.restart(sim, i, RestartKind::Quarantine);
        true
    }

    /// One checkpoint pass: snapshot every healthy watched engine.
    fn checkpoint_pass(&self, sim: &mut Sim) {
        let now = sim.now();
        let count = self.inner.borrow().watched.len();
        for i in 0..count {
            let (group, id, skip) = {
                let inner = self.inner.borrow();
                let w = &inner.watched[i];
                let health = w.group.engine_health(w.id);
                let skip = w.restarting
                    || health.map(|h| h.crashed || h.suspended).unwrap_or(true);
                (w.group.clone(), w.id, skip)
            };
            if skip {
                continue;
            }
            let state = group.with_engine(id, |e| e.serialize_state());
            let mut inner = self.inner.borrow_mut();
            inner.watched[i].checkpoint = state;
            inner.watched[i].checkpoint_at = now;
            inner.report.checkpoints += 1;
        }
    }

    /// One health pass: detect dead and wedged engines, start restarts.
    fn health_pass(&self, sim: &mut Sim) {
        let now = sim.now();
        let mut actions = Vec::new();
        {
            let inner = self.inner.borrow();
            for (i, w) in inner.watched.iter().enumerate() {
                if w.restarting {
                    continue;
                }
                let Some(health) = w.group.engine_health(w.id) else {
                    continue;
                };
                if health.suspended {
                    // An upgrade (or another restart) owns the engine.
                    continue;
                }
                if health.crashed {
                    actions.push((i, RestartKind::Crash));
                    continue;
                }
                // Wedge: work is waiting but no pass has completed for
                // longer than the threshold (measured from the last
                // pass or the last restart, whichever is newer).
                let last_progress = health.last_pass.max(w.last_restart);
                if health.pending > 0
                    && now.saturating_sub(last_progress) > inner.cfg.wedge_threshold
                {
                    actions.push((i, RestartKind::Wedge));
                }
            }
        }
        for (i, kind) in actions {
            self.restart(sim, i, kind);
        }
    }

    /// Rebuilds watched engine `i` from its last checkpoint after the
    /// configured blackout.
    fn restart(&self, sim: &mut Sim, i: usize, kind: RestartKind) {
        let (group, id, restart_cost, log_idx) = {
            let mut inner = self.inner.borrow_mut();
            inner.watched[i].restarting = true;
            match kind {
                RestartKind::Crash => inner.report.crash_restarts += 1,
                RestartKind::Wedge => inner.report.wedge_restarts += 1,
                RestartKind::Quarantine => inner.report.quarantine_restarts += 1,
            }
            let w = &inner.watched[i];
            let (group, id, cost) = (w.group.clone(), w.id, inner.cfg.restart_cost);
            inner.restart_log.push(RestartRecord {
                id,
                kind,
                detected: sim.now(),
                resumed: None,
            });
            (group, id, cost, inner.restart_log.len() - 1)
        };
        if matches!(kind, RestartKind::Wedge | RestartKind::Quarantine) {
            // The wedged (or quarantined) engine is still resident:
            // suspend it (running its detach hook, dropping NIC
            // filters) and discard it — its in-memory state is not
            // trusted.
            group.suspend_engine(sim, id);
            drop(group.take_engine(id));
        }
        let handle = self.clone();
        sim.schedule_in(restart_cost, move |sim| {
            let (factory, checkpoint) = {
                let inner = handle.inner.borrow();
                let w = &inner.watched[i];
                (w.factory.clone(), w.checkpoint.clone())
            };
            let engine = factory(checkpoint, sim);
            group.resume_engine(sim, id, engine);
            let mut inner = handle.inner.borrow_mut();
            inner.watched[i].restarting = false;
            inner.watched[i].last_restart = sim.now();
            inner.restart_log[log_idx].resumed = Some(sim.now());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CountingEngine;
    use crate::group::{GroupConfig, MachineHandle, SchedulingMode};
    use snap_sched::machine::Machine;
    use snap_shm::account::CpuAccountant;

    fn group() -> GroupHandle {
        let machine: MachineHandle = Rc::new(RefCell::new(Machine::new(4, 1)));
        GroupHandle::new(
            GroupConfig {
                name: "g".into(),
                mode: SchedulingMode::Dedicated { cores: vec![0] },
                class: None,
            },
            machine,
            CpuAccountant::new(),
        )
    }

    fn counting_factory() -> RestartFactory {
        Rc::new(|state, _sim| {
            let mut e = CountingEngine::new("revived", Nanos(100));
            e.processed = u64::from_le_bytes(state.try_into().expect("8-byte checkpoint"));
            Box::new(e)
        })
    }

    fn inject(g: &GroupHandle, id: EngineId, now: Nanos, n: usize) {
        g.with_engine(id, |e| {
            let e = e.as_any().downcast_mut::<CountingEngine>().expect("counting");
            for _ in 0..n {
                e.inject(now);
            }
        });
    }

    fn processed(g: &GroupHandle, id: EngineId) -> u64 {
        g.with_engine(id, |e| {
            e.as_any().downcast_mut::<CountingEngine>().expect("counting").processed
        })
    }

    fn sup() -> Supervisor {
        Supervisor::new(SupervisorConfig {
            checkpoint_interval: Nanos::from_millis(1),
            health_poll: Nanos::from_micros(200),
            wedge_threshold: Nanos::from_millis(1),
            restart_cost: Nanos::from_micros(50),
        })
    }

    #[test]
    fn healthy_engines_only_accumulate_checkpoints() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("e", Nanos(100))));
        g.start(&mut sim);
        let s = sup();
        s.watch(&mut sim, g.clone(), id, counting_factory());
        s.start(&mut sim);
        sim.run_until(Nanos::from_millis(10));
        s.stop();
        sim.run();
        let r = s.report();
        assert_eq!(r.restarts(), 0);
        assert!(r.checkpoints >= 10, "checkpoints: {}", r.checkpoints);
        assert!(s.checkpoint_age(id, Nanos::from_millis(10)).expect("watched") <= Nanos::from_millis(1));
    }

    #[test]
    fn crash_restarts_from_last_checkpoint() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("e", Nanos(100))));
        g.start(&mut sim);
        let s = sup();
        s.watch(&mut sim, g.clone(), id, counting_factory());
        s.start(&mut sim);
        // Do some work, let a checkpoint capture it, then crash.
        inject(&g, id, sim.now(), 7);
        g.wake(&mut sim, id);
        sim.run_until(Nanos::from_millis(2));
        assert_eq!(processed(&g, id), 7);
        g.kill_engine(id);
        sim.run_until(Nanos::from_millis(5));
        s.stop();
        sim.run();
        let r = s.report();
        assert_eq!(r.crash_restarts, 1);
        assert_eq!(r.wedge_restarts, 0);
        // The revived engine carries the checkpointed counter.
        assert_eq!(processed(&g, id), 7);
        assert_eq!(g.with_engine(id, |e| e.name().to_string()), "revived");
        assert!(!g.engine_health(id).expect("slot").crashed);
    }

    #[test]
    fn crash_before_any_periodic_checkpoint_uses_watch_snapshot() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("e", Nanos(100))));
        g.start(&mut sim);
        let s = sup();
        s.watch(&mut sim, g.clone(), id, counting_factory());
        s.start(&mut sim);
        // Crash immediately — only the watch-time checkpoint exists.
        g.kill_engine(id);
        sim.run_until(Nanos::from_millis(2));
        s.stop();
        sim.run();
        assert_eq!(s.report().crash_restarts, 1);
        assert_eq!(processed(&g, id), 0);
    }

    #[test]
    fn wedged_engine_is_detected_and_restarted() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("e", Nanos(100))));
        g.start(&mut sim);
        let s = sup();
        s.watch(&mut sim, g.clone(), id, counting_factory());
        s.start(&mut sim);
        // Wedge far longer than the threshold, with work pending.
        g.stall_engine(&mut sim, id, Nanos::from_millis(100));
        inject(&g, id, sim.now(), 3);
        g.wake(&mut sim, id);
        sim.run_until(Nanos::from_millis(10));
        s.stop();
        sim.run_until(Nanos::from_millis(12));
        let r = s.report();
        assert_eq!(r.wedge_restarts, 1, "report: {r:?}");
        assert_eq!(r.crash_restarts, 0);
        // Restart cleared the stall: new work processes immediately,
        // long before the 100ms stall would have lifted.
        inject(&g, id, sim.now(), 2);
        g.wake(&mut sim, id);
        sim.run_until(Nanos::from_millis(13));
        assert_eq!(processed(&g, id), 2);
    }

    #[test]
    fn quarantine_rebuilds_a_live_engine_and_counts_separately() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("e", Nanos(100))));
        g.start(&mut sim);
        let s = sup();
        s.watch(&mut sim, g.clone(), id, counting_factory());
        s.start(&mut sim);
        // Work gets checkpointed, then a health verdict quarantines the
        // (perfectly alive) engine.
        inject(&g, id, sim.now(), 5);
        g.wake(&mut sim, id);
        sim.run_until(Nanos::from_millis(2));
        assert_eq!(processed(&g, id), 5);
        // Wrong group or unknown id: refused, nothing restarted.
        let other = group();
        assert!(!s.quarantine(&mut sim, &other, id));
        assert!(!s.quarantine(&mut sim, &g, EngineId(42)));
        assert!(s.quarantine(&mut sim, &g, id));
        // Already restarting: second request refused.
        assert!(!s.quarantine(&mut sim, &g, id));
        sim.run_until(Nanos::from_millis(4));
        s.stop();
        sim.run();
        let r = s.report();
        assert_eq!(r.quarantine_restarts, 1);
        assert_eq!(r.crash_restarts + r.wedge_restarts, 0);
        assert_eq!(r.restarts(), 1);
        // Rebuilt from the checkpoint, alive and serving.
        assert_eq!(processed(&g, id), 5);
        assert_eq!(g.with_engine(id, |e| e.name().to_string()), "revived");
        let log = s.restart_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, RestartKind::Quarantine);
        assert!(log[0].blackout().is_some());
    }

    #[test]
    fn restart_pays_the_configured_blackout() {
        let mut sim = Sim::new();
        let g = group();
        let id = g.add_engine(Box::new(CountingEngine::new("e", Nanos(100))));
        g.start(&mut sim);
        let s = Supervisor::new(SupervisorConfig {
            restart_cost: Nanos::from_millis(3),
            health_poll: Nanos::from_micros(100),
            ..SupervisorConfig::default()
        });
        s.watch(&mut sim, g.clone(), id, counting_factory());
        s.start(&mut sim);
        g.kill_engine(id);
        // Shortly after detection the engine is still down...
        sim.run_until(Nanos::from_millis(1));
        assert!(g.engine_health(id).expect("slot").crashed);
        // ...and alive once the blackout has elapsed.
        sim.run_until(Nanos::from_millis(5));
        assert!(!g.engine_health(id).expect("slot").crashed);
        // The restart log records the blackout window.
        let log = s.restart_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].id, id);
        assert_eq!(log[0].kind, RestartKind::Crash);
        let blackout = log[0].blackout().expect("restart completed");
        assert!(
            blackout >= Nanos::from_millis(3),
            "blackout {blackout} below configured restart cost"
        );
        s.stop();
    }
}
