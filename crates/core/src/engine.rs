//! The engine abstraction (§2.2).
//!
//! "Engines are stateful, single-threaded tasks that are scheduled and
//! run by a Snap engine scheduling runtime." An engine's interface to
//! the runtime is deliberately small:
//!
//! * [`Engine::run`] — one bounded scheduling pass: poll inputs, advance
//!   state machines, generate output packets. Returns a [`RunReport`]
//!   with the CPU consumed and queueing statistics. To "maintain
//!   real-time properties" (§2.2) passes must be bounded; the runtime
//!   asserts a latency budget in debug builds.
//! * [`Engine::serialize_state`] / [`Engine::state_bytes`] — the
//!   intermediate-format snapshot used by transparent upgrades (§4).
//! * [`Engine::pending_work`] / [`Engine::oldest_pending_age`] — the
//!   queueing-delay estimate the compacting scheduler polls
//!   ("measured using an algorithm similar to Shenango", §2.4).

use snap_sim::{Nanos, Sim};

/// Identifies an engine within a Snap process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EngineId(pub u32);

/// The outcome of one engine scheduling pass.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// CPU time consumed by this pass.
    pub cpu: Nanos,
    /// Whether the pass found and did any work.
    pub work_done: bool,
    /// Immediately actionable items (packets, commands, sendable
    /// frames) still pending after the pass.
    pub pending: usize,
    /// Earliest self-timer deadline (pacing, retransmission). Workers
    /// poll-wait through near deadlines instead of paying a full
    /// block/wake cycle for sub-microsecond pacing gaps.
    pub next_deadline: Option<Nanos>,
}

impl RunReport {
    /// An idle pass that only paid the polling cost.
    pub fn idle(poll_cost: Nanos) -> RunReport {
        RunReport {
            cpu: poll_cost,
            work_done: false,
            pending: 0,
            next_deadline: None,
        }
    }
}

/// A Snap engine: a single-threaded packet-processing task.
///
/// Engines never block (§2.2 prohibits blocking synchronization); all
/// communication happens over lock-free queues and mailboxes serviced
/// inside [`Engine::run`].
pub trait Engine {
    /// Engine name for dashboards and upgrade logs.
    fn name(&self) -> &str;

    /// Executes one bounded scheduling pass at virtual time `sim.now()`.
    fn run(&mut self, sim: &mut Sim) -> RunReport;

    /// Number of work items currently queued for this engine.
    fn pending_work(&self) -> usize;

    /// Age of the oldest pending work item — the engine's current
    /// queueing delay, polled by the compacting scheduler.
    fn oldest_pending_age(&self, now: Nanos) -> Nanos;

    /// Serializes all engine state into the upgrade intermediate
    /// format (§4: "the running version of Snap serializes all state to
    /// an intermediate format stored in memory shared with a new
    /// version").
    fn serialize_state(&mut self) -> Vec<u8>;

    /// Size of the serialized state, for brownout planning and
    /// blackout-duration modeling.
    fn state_bytes(&mut self) -> u64 {
        self.serialize_state().len() as u64
    }

    /// Called when the engine is suspended for upgrade: detach from
    /// NIC receive filters and cease packet processing.
    fn detach(&mut self, sim: &mut Sim);

    /// Called when the engine is resumed: re-attach NIC receive
    /// filters dropped by [`Engine::detach`]. Engines that attach in
    /// their constructor may keep the default no-op, but must make
    /// attachment idempotent if they override this — a resumed
    /// successor is attached twice (constructor + resume). The upgrade
    /// rollback path relies on this hook to bring a previously detached
    /// predecessor back online.
    fn attach(&mut self, sim: &mut Sim) {
        let _ = sim;
    }

    /// The application container this engine's work is charged to.
    fn container(&self) -> &str {
        "snap-system"
    }

    /// Downcast support for module control paths that need the
    /// concrete engine type (e.g. the Pony module configuring its own
    /// engines through the mailbox).
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// A trivial engine that drains a closure-fed work counter; used by
/// framework tests and as the simplest possible example of the trait.
pub struct CountingEngine {
    name: String,
    /// Work items waiting, with their enqueue times.
    queue: std::collections::VecDeque<Nanos>,
    /// CPU cost per item processed.
    pub per_item_cost: Nanos,
    /// Items processed in total.
    pub processed: u64,
    /// Max items per pass (the bounded batch).
    pub batch: usize,
    detached: bool,
}

impl CountingEngine {
    /// Creates an engine with the given per-item CPU cost.
    pub fn new(name: impl Into<String>, per_item_cost: Nanos) -> Self {
        CountingEngine {
            name: name.into(),
            queue: std::collections::VecDeque::new(),
            per_item_cost,
            processed: 0,
            batch: 16,
            detached: false,
        }
    }

    /// Enqueues one work item at time `now`.
    pub fn inject(&mut self, now: Nanos) {
        self.queue.push_back(now);
    }

    /// True once [`Engine::detach`] ran.
    pub fn is_detached(&self) -> bool {
        self.detached
    }
}

impl Engine for CountingEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, sim: &mut Sim) -> RunReport {
        let _ = sim;
        let n = self.queue.len().min(self.batch);
        for _ in 0..n {
            self.queue.pop_front();
        }
        self.processed += n as u64;
        RunReport {
            cpu: Nanos(snap_sim::costs::ENGINE_POLL_PASS_NS) + self.per_item_cost * n as u64,
            work_done: n > 0,
            pending: self.queue.len(),
            next_deadline: None,
        }
    }

    fn pending_work(&self) -> usize {
        self.queue.len()
    }

    fn oldest_pending_age(&self, now: Nanos) -> Nanos {
        self.queue
            .front()
            .map(|&t| now.saturating_sub(t))
            .unwrap_or(Nanos::ZERO)
    }

    fn serialize_state(&mut self) -> Vec<u8> {
        self.processed.to_le_bytes().to_vec()
    }

    fn detach(&mut self, _sim: &mut Sim) {
        self.detached = true;
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_engine_processes_in_batches() {
        let mut sim = Sim::new();
        let mut e = CountingEngine::new("test", Nanos(100));
        for _ in 0..20 {
            e.inject(Nanos::ZERO);
        }
        let r = e.run(&mut sim);
        assert!(r.work_done);
        assert_eq!(r.pending, 4);
        assert_eq!(e.processed, 16);
        assert_eq!(
            r.cpu,
            Nanos(snap_sim::costs::ENGINE_POLL_PASS_NS + 1_600)
        );
        let r2 = e.run(&mut sim);
        assert_eq!(r2.pending, 0);
        assert_eq!(e.processed, 20);
    }

    #[test]
    fn idle_pass_costs_poll_only() {
        let mut sim = Sim::new();
        let mut e = CountingEngine::new("idle", Nanos(100));
        let r = e.run(&mut sim);
        assert!(!r.work_done);
        assert_eq!(r.cpu, Nanos(snap_sim::costs::ENGINE_POLL_PASS_NS));
    }

    #[test]
    fn oldest_age_tracks_head_of_queue() {
        let mut e = CountingEngine::new("age", Nanos(10));
        assert_eq!(e.oldest_pending_age(Nanos(500)), Nanos::ZERO);
        e.inject(Nanos(100));
        e.inject(Nanos(400));
        assert_eq!(e.oldest_pending_age(Nanos(500)), Nanos(400));
    }

    #[test]
    fn state_roundtrip() {
        let mut sim = Sim::new();
        let mut e = CountingEngine::new("s", Nanos(1));
        e.inject(Nanos::ZERO);
        e.run(&mut sim);
        let state = e.serialize_state();
        assert_eq!(u64::from_le_bytes(state.try_into().unwrap()), 1);
    }
}
