//! Modules and the Snap control plane (§2.3, Fig. 2).
//!
//! "Snap modules are responsible for setting up control plane RPC
//! services, instantiating engines, loading them into engine groups,
//! and proxying all user setup interactions for those engines."
//!
//! [`SnapProcess`] is one running Snap instance: it hosts modules,
//! engine groups, the shared-memory region registry, and the
//! accountants. Applications first authenticate (§2.6: "Applications
//! establishing interactions with Snap authenticate its identity using
//! standard Linux mechanisms" — modeled with session tokens), then
//! issue control RPCs that modules service; the RPCs that set up the
//! fast path hand back shared-memory queue endpoints, standing in for
//! fd-passing over Unix domain sockets.

// Control-plane code must degrade into typed errors, never panic: a
// malformed RPC or a crashed engine is an expected event here.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use std::collections::HashMap;

use snap_shm::account::{CpuAccountant, MemoryAccountant};
use snap_shm::region::RegionRegistry;
use snap_sim::Sim;

use crate::group::{GroupConfig, GroupHandle, MachineHandle, SchedulingMode};

/// Control-plane errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// The session is not authenticated.
    Unauthenticated,
    /// No module registered under that name.
    UnknownModule(String),
    /// The module does not implement the method.
    UnknownMethod(String),
    /// The request payload was malformed or violated a precondition.
    Invalid(String),
    /// The target engine is crashed, suspended, or gone; the caller
    /// should retry after the supervisor restarts it.
    Unavailable(String),
    /// The engine mailbox is occupied; retry with backoff.
    Busy(String),
    /// A mailbox RPC exhausted its retry budget.
    Timeout(String),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Unauthenticated => write!(f, "unauthenticated"),
            ControlError::UnknownModule(m) => write!(f, "unknown module {m}"),
            ControlError::UnknownMethod(m) => write!(f, "unknown method {m}"),
            ControlError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ControlError::Unavailable(what) => write!(f, "engine unavailable: {what}"),
            ControlError::Busy(what) => write!(f, "mailbox busy: {what}"),
            ControlError::Timeout(what) => write!(f, "control rpc timed out: {what}"),
        }
    }
}

impl std::error::Error for ControlError {}

/// Context handed to module RPC handlers: everything a module needs to
/// instantiate engines and wire applications to them.
pub struct ControlCx<'a> {
    /// The simulator, for scheduling engine work.
    pub sim: &'a mut Sim,
    /// Engine groups by name.
    pub groups: &'a HashMap<String, GroupHandle>,
    /// The shared-memory region registry.
    pub regions: &'a RegionRegistry,
    /// Memory accountant (charge per-user state, §2.5).
    pub memory: &'a MemoryAccountant,
    /// CPU accountant.
    pub cpu: &'a CpuAccountant,
    /// Name of the authenticated application issuing the RPC.
    pub app: &'a str,
}

/// A Snap module: control-plane logic for a family of engines.
pub trait Module {
    /// Module name (RPC routing key).
    fn name(&self) -> &str;

    /// Handles one control RPC.
    fn handle(
        &mut self,
        method: &str,
        payload: &[u8],
        cx: &mut ControlCx<'_>,
    ) -> Result<Vec<u8>, ControlError>;
}

/// An authenticated application session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSession {
    app: String,
    token: u64,
}

impl AppSession {
    /// The application (container) name.
    pub fn app(&self) -> &str {
        &self.app
    }
}

/// One running Snap instance.
pub struct SnapProcess {
    version: u32,
    modules: HashMap<String, Box<dyn Module>>,
    groups: HashMap<String, GroupHandle>,
    regions: RegionRegistry,
    memory: MemoryAccountant,
    cpu: CpuAccountant,
    machine: MachineHandle,
    sessions: HashMap<u64, String>,
    next_token: u64,
}

impl SnapProcess {
    /// Launches a Snap instance of the given release version on
    /// `machine`.
    pub fn new(version: u32, machine: MachineHandle) -> Self {
        let memory = MemoryAccountant::new();
        SnapProcess {
            version,
            modules: HashMap::new(),
            groups: HashMap::new(),
            regions: RegionRegistry::new(memory.clone()),
            memory,
            cpu: CpuAccountant::new(),
            machine,
            sessions: HashMap::new(),
            next_token: 1,
        }
    }

    /// Release version of this instance.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The machine this instance runs on.
    pub fn machine(&self) -> MachineHandle {
        self.machine.clone()
    }

    /// Registers a module.
    ///
    /// # Panics
    ///
    /// Panics on duplicate module names.
    pub fn register_module(&mut self, module: Box<dyn Module>) {
        let name = module.name().to_string();
        let prev = self.modules.insert(name.clone(), module);
        assert!(prev.is_none(), "duplicate module {name}");
    }

    /// Creates an engine group with the given scheduling mode.
    ///
    /// # Panics
    ///
    /// Panics on duplicate group names.
    pub fn create_group(&mut self, name: &str, mode: SchedulingMode) -> GroupHandle {
        let handle = GroupHandle::new(
            GroupConfig {
                name: name.to_string(),
                mode,
                class: None,
            },
            self.machine.clone(),
            self.cpu.clone(),
        );
        let prev = self.groups.insert(name.to_string(), handle.clone());
        assert!(prev.is_none(), "duplicate group {name}");
        handle
    }

    /// Looks up a group by name.
    pub fn group(&self, name: &str) -> Option<GroupHandle> {
        self.groups.get(name).cloned()
    }

    /// All groups, for the upgrade orchestrator.
    pub fn groups(&self) -> impl Iterator<Item = (&String, &GroupHandle)> {
        self.groups.iter()
    }

    /// The shared-memory region registry.
    pub fn regions(&self) -> &RegionRegistry {
        &self.regions
    }

    /// Memory accountant.
    pub fn memory_accountant(&self) -> &MemoryAccountant {
        &self.memory
    }

    /// CPU accountant.
    pub fn cpu_accountant(&self) -> &CpuAccountant {
        &self.cpu
    }

    /// Authenticates an application, producing a session (the Unix
    /// domain socket credential handshake of §2.3/§2.6).
    pub fn authenticate(&mut self, app: &str) -> AppSession {
        let token = self.next_token;
        self.next_token += 1;
        self.sessions.insert(token, app.to_string());
        AppSession {
            app: app.to_string(),
            token,
        }
    }

    /// Revokes a session.
    pub fn disconnect(&mut self, session: &AppSession) {
        self.sessions.remove(&session.token);
    }

    /// Dispatches a control RPC from an authenticated session to a
    /// module.
    pub fn rpc(
        &mut self,
        sim: &mut Sim,
        session: &AppSession,
        module: &str,
        method: &str,
        payload: &[u8],
    ) -> Result<Vec<u8>, ControlError> {
        let app = self
            .sessions
            .get(&session.token)
            .filter(|a| *a == &session.app)
            .cloned()
            .ok_or(ControlError::Unauthenticated)?;
        let m = self
            .modules
            .get_mut(module)
            .ok_or_else(|| ControlError::UnknownModule(module.to_string()))?;
        let mut cx = ControlCx {
            sim,
            groups: &self.groups,
            regions: &self.regions,
            memory: &self.memory,
            cpu: &self.cpu,
            app: &app,
        };
        m.handle(method, payload, &mut cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_sched::machine::Machine;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct EchoModule;

    impl Module for EchoModule {
        fn name(&self) -> &str {
            "echo"
        }
        fn handle(
            &mut self,
            method: &str,
            payload: &[u8],
            cx: &mut ControlCx<'_>,
        ) -> Result<Vec<u8>, ControlError> {
            match method {
                "echo" => {
                    let mut out = cx.app.as_bytes().to_vec();
                    out.push(b':');
                    out.extend_from_slice(payload);
                    Ok(out)
                }
                other => Err(ControlError::UnknownMethod(other.to_string())),
            }
        }
    }

    fn process() -> SnapProcess {
        SnapProcess::new(1, Rc::new(RefCell::new(Machine::new(4, 1))))
    }

    #[test]
    fn rpc_roundtrip() {
        let mut sim = Sim::new();
        let mut p = process();
        p.register_module(Box::new(EchoModule));
        let session = p.authenticate("websearch");
        let reply = p.rpc(&mut sim, &session, "echo", "echo", b"hi").unwrap();
        assert_eq!(reply, b"websearch:hi");
    }

    #[test]
    fn unknown_module_and_method() {
        let mut sim = Sim::new();
        let mut p = process();
        p.register_module(Box::new(EchoModule));
        let session = p.authenticate("app");
        assert!(matches!(
            p.rpc(&mut sim, &session, "ghost", "x", b""),
            Err(ControlError::UnknownModule(_))
        ));
        assert!(matches!(
            p.rpc(&mut sim, &session, "echo", "nope", b""),
            Err(ControlError::UnknownMethod(_))
        ));
    }

    #[test]
    fn disconnected_session_is_rejected() {
        let mut sim = Sim::new();
        let mut p = process();
        p.register_module(Box::new(EchoModule));
        let session = p.authenticate("app");
        p.disconnect(&session);
        assert_eq!(
            p.rpc(&mut sim, &session, "echo", "echo", b""),
            Err(ControlError::Unauthenticated)
        );
    }

    #[test]
    fn forged_session_is_rejected() {
        let mut sim = Sim::new();
        let mut p = process();
        p.register_module(Box::new(EchoModule));
        let real = p.authenticate("alice");
        let forged = AppSession {
            app: "bob".to_string(),
            token: real.token,
        };
        assert_eq!(
            p.rpc(&mut sim, &forged, "echo", "echo", b""),
            Err(ControlError::Unauthenticated)
        );
    }

    #[test]
    fn groups_are_created_and_found() {
        let mut p = process();
        let g = p.create_group("transport", SchedulingMode::Spreading);
        assert_eq!(g.name(), "transport");
        assert!(p.group("transport").is_some());
        assert!(p.group("nope").is_none());
        assert_eq!(p.groups().count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate group")]
    fn duplicate_group_panics() {
        let mut p = process();
        p.create_group("g", SchedulingMode::Spreading);
        p.create_group("g", SchedulingMode::Spreading);
    }

    #[test]
    fn version_is_visible() {
        assert_eq!(process().version(), 1);
    }
}
