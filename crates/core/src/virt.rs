//! Network-virtualization engine — the Andromeda-style engine family
//! (§1, §2.1, §3: "packet processing for network virtualization [19]",
//! one of the four production Snap engine types alongside shaping,
//! edge switching and Pony Express).
//!
//! A [`VirtEngine`] gives guest VMs virtual network connectivity:
//!
//! * **Guest tx**: packets leave the guest through a shared ring
//!   ([`crate::kernel_inject::KernelRing`] doubles as the vNIC queue),
//!   are matched against a per-tenant **flow table** mapping virtual
//!   destination addresses to physical hosts, encapsulated with an
//!   outer header, and transmitted on the fabric.
//! * **Guest rx**: encapsulated packets arriving from the fabric are
//!   validated (tenant isolation), decapsulated, and delivered to the
//!   destination guest's rx ring.
//! * **Misses** take the slow path: counted and queued for the control
//!   plane, which installs routes through the engine mailbox — the
//!   Andromeda "Hoverboard"-style split between a fast on-engine path
//!   and centralized control.
//!
//! The flow table serializes for transparent upgrades like any other
//! engine state.

use std::collections::HashMap;

use bytes::Bytes;

use snap_nic::fabric::FabricHandle;
use snap_nic::packet::{HostId, Packet, QosClass};
use snap_sim::codec::{Reader, Writer};
use snap_sim::costs;
use snap_sim::{Nanos, Sim};

use crate::engine::{Engine, RunReport};
use crate::kernel_inject::KernelRing;

/// A guest's virtual address: (tenant, virtual ip).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtAddr {
    /// Tenant (isolation domain).
    pub tenant: u32,
    /// Virtual IP within the tenant's network.
    pub vip: u32,
}

/// A flow-table entry: where a virtual address physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Physical host running the destination guest.
    pub host: HostId,
    /// Steering key of the destination host's virt engine.
    pub engine_key: u64,
}

/// Bytes of encapsulation overhead per packet (outer header).
pub const ENCAP_OVERHEAD: u32 = 36;

/// Virtualization-engine counters.
#[derive(Debug, Clone, Default)]
pub struct VirtStats {
    /// Guest packets encapsulated and transmitted.
    pub encapped: u64,
    /// Fabric packets decapsulated and delivered to guests.
    pub decapped: u64,
    /// Fast-path flow-table hits.
    pub hits: u64,
    /// Flow-table misses (slow path).
    pub misses: u64,
    /// Packets dropped for tenant-isolation violations.
    pub isolation_drops: u64,
    /// Packets dropped because the destination guest ring was full or
    /// the guest is unknown.
    pub delivery_drops: u64,
}

/// One guest attachment: its tx and rx rings (the vNIC queue pair).
pub struct GuestPort {
    /// Guest-visible address.
    pub addr: VirtAddr,
    /// Guest -> engine (guest transmit).
    pub tx: KernelRing,
    /// Engine -> guest (guest receive).
    pub rx: KernelRing,
}

/// The virtualization engine for one host.
pub struct VirtEngine {
    name: String,
    host: HostId,
    engine_key: u64,
    queue: u16,
    fabric: FabricHandle,
    guests: Vec<GuestPort>,
    flows: HashMap<VirtAddr, Route>,
    /// Addresses that missed, awaiting control-plane resolution.
    pending_misses: Vec<VirtAddr>,
    stats: VirtStats,
    batch: usize,
    buf: Vec<(Nanos, Packet)>,
    rx_buf: Vec<Packet>,
}

impl VirtEngine {
    /// Creates the engine and attaches its NIC receive filter.
    pub fn new(
        name: impl Into<String>,
        host: HostId,
        engine_key: u64,
        queue: u16,
        fabric: FabricHandle,
    ) -> Self {
        fabric.with_nic(host, |nic| {
            nic.attach_filter(engine_key, queue);
            nic.arm_irq(queue, true);
        });
        VirtEngine {
            name: name.into(),
            host,
            engine_key,
            queue,
            fabric,
            guests: Vec::new(),
            flows: HashMap::new(),
            pending_misses: Vec::new(),
            stats: VirtStats::default(),
            batch: costs::DEFAULT_POLL_BATCH,
            buf: Vec::new(),
            rx_buf: Vec::new(),
        }
    }

    /// Attaches a guest VM; returns its port's ring pair (tx, rx).
    pub fn attach_guest(&mut self, addr: VirtAddr, ring_depth: usize) -> (KernelRing, KernelRing) {
        let tx = KernelRing::new(ring_depth);
        let rx = KernelRing::new(ring_depth);
        self.attach_guest_with_rings(addr, tx.clone(), rx.clone());
        (tx, rx)
    }

    /// Attaches a guest with pre-existing rings — the upgrade path,
    /// where the successor engine re-maps the guest's shared-memory
    /// queues transferred during brownout.
    pub fn attach_guest_with_rings(&mut self, addr: VirtAddr, tx: KernelRing, rx: KernelRing) {
        self.guests.push(GuestPort { addr, tx, rx });
    }

    /// Installs a route (control plane, via the engine mailbox).
    pub fn install_route(&mut self, addr: VirtAddr, route: Route) {
        self.flows.insert(addr, route);
        self.pending_misses.retain(|a| *a != addr);
    }

    /// Addresses whose flows missed, for the control plane to resolve.
    pub fn take_pending_misses(&mut self) -> Vec<VirtAddr> {
        std::mem::take(&mut self.pending_misses)
    }

    /// Counters.
    pub fn stats(&self) -> &VirtStats {
        &self.stats
    }

    /// Flow-table size.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Encapsulates a guest packet: outer wire header names the source
    /// tenant + virtual endpoints so the remote engine can enforce
    /// isolation and route to the right guest.
    fn encap(&self, src: VirtAddr, dst: VirtAddr, inner: &Packet, route: Route) -> Packet {
        let mut w = Writer::with_capacity(32 + inner.payload.len());
        w.u32(src.tenant)
            .u32(src.vip)
            .u32(dst.tenant)
            .u32(dst.vip)
            .bytes(&inner.payload);
        let mut outer = Packet::new(self.host, route.host, Bytes::from(w.finish()));
        outer.wire_size = inner.wire_size + ENCAP_OVERHEAD;
        outer
            .with_qos(QosClass::BestEffort)
            .with_steer_key(route.engine_key)
            .with_rss_hash(((dst.tenant as u64) << 32) | dst.vip as u64)
    }

    /// Decapsulates a fabric packet; `None` if malformed.
    fn decap(payload: &[u8]) -> Option<(VirtAddr, VirtAddr, Vec<u8>)> {
        let mut r = Reader::new(payload);
        let src = VirtAddr {
            tenant: r.u32().ok()?,
            vip: r.u32().ok()?,
        };
        let dst = VirtAddr {
            tenant: r.u32().ok()?,
            vip: r.u32().ok()?,
        };
        let inner = r.bytes().ok()?.to_vec();
        Some((src, dst, inner))
    }
}

impl Engine for VirtEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, sim: &mut Sim) -> RunReport {
        let now = sim.now();
        let mut cpu = Nanos(costs::ENGINE_POLL_PASS_NS);
        let mut work = false;

        // 1. Guest tx: encap + transmit.
        for gi in 0..self.guests.len() {
            self.buf.clear();
            let mut staged = std::mem::take(&mut self.buf);
            self.guests[gi].tx.drain(self.batch, &mut staged);
            let src = self.guests[gi].addr;
            for (_, inner) in staged.drain(..) {
                work = true;
                cpu += Nanos(costs::PONY_PER_PACKET_NS);
                // The guest addresses peers by (tenant, vip) packed in
                // the inner packet's rss_hash (its virtual L3 header).
                let dst = VirtAddr {
                    tenant: (inner.rss_hash >> 32) as u32,
                    vip: inner.rss_hash as u32,
                };
                if dst.tenant != src.tenant {
                    // Guests may only address their own tenant network.
                    self.stats.isolation_drops += 1;
                    continue;
                }
                match self.flows.get(&dst).copied() {
                    Some(route) => {
                        self.stats.hits += 1;
                        let outer = self.encap(src, dst, &inner, route);
                        if self.fabric.transmit(sim, self.queue, outer).is_ok() {
                            self.stats.encapped += 1;
                        } else {
                            self.stats.delivery_drops += 1;
                        }
                    }
                    None => {
                        // Slow path: hold for control-plane resolution.
                        self.stats.misses += 1;
                        if !self.pending_misses.contains(&dst) {
                            self.pending_misses.push(dst);
                        }
                    }
                }
            }
            self.buf = staged;
        }

        // 2. Fabric rx: decap + deliver to the destination guest.
        self.rx_buf.clear();
        let mut rx = std::mem::take(&mut self.rx_buf);
        let (host, queue, batch) = (self.host, self.queue, self.batch);
        self.fabric.with_nic(host, |nic| {
            nic.poll_rx(queue, batch, &mut rx);
        });
        for pkt in rx.drain(..) {
            work = true;
            cpu += Nanos(costs::PONY_PER_PACKET_NS)
                + costs::copy_cost(pkt.payload.len() as u64);
            let Some((src, dst, inner)) = Self::decap(&pkt.payload) else {
                self.stats.delivery_drops += 1;
                continue;
            };
            if src.tenant != dst.tenant {
                self.stats.isolation_drops += 1;
                continue;
            }
            let Some(port) = self.guests.iter().find(|g| g.addr == dst) else {
                self.stats.delivery_drops += 1;
                continue;
            };
            let mut delivered = Packet::new(pkt.src, self.host, Bytes::from(inner));
            delivered.rss_hash = ((src.tenant as u64) << 32) | src.vip as u64;
            if port.rx.inject(now, delivered) {
                self.stats.decapped += 1;
            } else {
                self.stats.delivery_drops += 1;
            }
        }
        self.rx_buf = rx;

        let pending = self.pending_work();
        RunReport {
            cpu,
            work_done: work,
            pending,
            next_deadline: None,
        }
    }

    fn pending_work(&self) -> usize {
        let guest_tx: usize = self.guests.iter().map(|g| g.tx.len()).sum();
        let rx = self.fabric.with_nic(self.host, |nic| nic.rx_pending(self.queue));
        guest_tx + rx
    }

    fn oldest_pending_age(&self, now: Nanos) -> Nanos {
        self.guests
            .iter()
            .map(|g| g.tx.oldest_age(now))
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    fn serialize_state(&mut self) -> Vec<u8> {
        // The flow table is the engine's migrable state; guest rings
        // are re-injected by the factory (shared-memory handles travel
        // in brownout, like Pony sessions).
        let mut w = Writer::with_capacity(64 + self.flows.len() * 24);
        w.u32(self.flows.len() as u32);
        let mut entries: Vec<_> = self.flows.iter().collect();
        entries.sort_by_key(|(a, _)| **a);
        for (addr, route) in entries {
            w.u32(addr.tenant)
                .u32(addr.vip)
                .u32(route.host)
                .u64(route.engine_key);
        }
        w.finish()
    }

    fn detach(&mut self, _sim: &mut Sim) {
        self.fabric.with_nic(self.host, |nic| {
            nic.detach_filter(self.engine_key);
        });
    }

    fn container(&self) -> &str {
        "virt"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl VirtEngine {
    /// Restores the flow table from [`Engine::serialize_state`] output
    /// into a freshly constructed engine (the upgrade factory re-calls
    /// [`VirtEngine::attach_guest`] with the preserved rings).
    ///
    /// # Panics
    ///
    /// Panics on a corrupt snapshot.
    pub fn restore_flows(&mut self, state: &[u8]) {
        let mut r = Reader::new(state);
        let n = r.u32().expect("flow count");
        for _ in 0..n {
            let addr = VirtAddr {
                tenant: r.u32().expect("tenant"),
                vip: r.u32().expect("vip"),
            };
            let route = Route {
                host: r.u32().expect("host"),
                engine_key: r.u64().expect("key"),
            };
            self.flows.insert(addr, route);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{GroupConfig, GroupHandle, SchedulingMode};
    use snap_nic::fabric::FabricConfig;
    use snap_nic::nic::NicConfig;
    use snap_sched::machine::Machine;
    use snap_shm::account::CpuAccountant;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Two hosts, each with a virt engine in a Snap group, plus the
    /// NIC irq wiring a module would install.
    struct World {
        sim: Sim,
        fabric: FabricHandle,
        groups: Vec<GroupHandle>,
        engines: Vec<crate::engine::EngineId>,
    }

    const KEY0: u64 = 0xA0;
    const KEY1: u64 = 0xA1;

    fn world() -> World {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let mut groups = Vec::new();
        let mut engines = Vec::new();
        for h in 0..2u32 {
            let host = fabric.add_host(NicConfig::default());
            let machine = Rc::new(RefCell::new(Machine::new(4, h as u64 + 1)));
            let group = GroupHandle::new(
                GroupConfig::new(
                    format!("virt{h}"),
                    SchedulingMode::Dedicated { cores: vec![0] },
                ),
                machine,
                CpuAccountant::new(),
            );
            group.start(&mut sim);
            let key = if h == 0 { KEY0 } else { KEY1 };
            let engine = VirtEngine::new(format!("virt-{h}"), host, key, 0, fabric.clone());
            let id = group.add_engine(Box::new(engine));
            let wake = group.wake_handle(id);
            fabric.with_nic(host, |nic| {
                nic.set_irq_handler(Rc::new(move |sim, _q| wake(sim)));
            });
            groups.push(group);
            engines.push(id);
        }
        World {
            sim,
            fabric,
            groups,
            engines,
        }
    }

    fn with_virt<R>(w: &World, h: usize, f: impl FnOnce(&mut VirtEngine) -> R) -> R {
        w.groups[h].with_engine(w.engines[h], |e| {
            f(e.as_any().downcast_mut::<VirtEngine>().expect("virt engine"))
        })
    }

    fn guest_packet(to: VirtAddr, len: usize) -> Packet {
        let mut p = Packet::new(0, 0, Bytes::from(vec![0x5Au8; len]));
        p.rss_hash = ((to.tenant as u64) << 32) | to.vip as u64;
        p
    }

    #[test]
    fn guest_to_guest_across_hosts() {
        let mut w = world();
        let g1 = VirtAddr { tenant: 7, vip: 1 };
        let g2 = VirtAddr { tenant: 7, vip: 2 };
        let (g1_tx, _g1_rx) = with_virt(&w, 0, |e| e.attach_guest(g1, 64));
        let (_g2_tx, g2_rx) = with_virt(&w, 1, |e| e.attach_guest(g2, 64));
        // Control plane programs the route on the sending side.
        with_virt(&w, 0, |e| {
            e.install_route(g2, Route { host: 1, engine_key: KEY1 })
        });

        g1_tx.inject(w.sim.now(), guest_packet(g2, 300));
        w.groups[0].wake(&mut w.sim, w.engines[0]);
        w.sim.run_until(Nanos::from_millis(1));

        assert_eq!(g2_rx.len(), 1, "guest 2 received the packet");
        let mut out = Vec::new();
        g2_rx.drain(1, &mut out);
        let (_, pkt) = &out[0];
        assert_eq!(pkt.payload.len(), 300, "inner payload intact");
        assert_eq!(
            pkt.rss_hash,
            ((g1.tenant as u64) << 32) | g1.vip as u64,
            "source virtual address visible to the guest"
        );
        with_virt(&w, 0, |e| {
            assert_eq!(e.stats().encapped, 1);
            assert_eq!(e.stats().hits, 1);
        });
        with_virt(&w, 1, |e| assert_eq!(e.stats().decapped, 1));
    }

    #[test]
    fn flow_miss_takes_slow_path_until_route_installed() {
        let mut w = world();
        let g1 = VirtAddr { tenant: 3, vip: 1 };
        let g2 = VirtAddr { tenant: 3, vip: 2 };
        let (g1_tx, _) = with_virt(&w, 0, |e| e.attach_guest(g1, 64));
        let (_, g2_rx) = with_virt(&w, 1, |e| e.attach_guest(g2, 64));

        g1_tx.inject(w.sim.now(), guest_packet(g2, 100));
        w.groups[0].wake(&mut w.sim, w.engines[0]);
        w.sim.run_until(Nanos::from_millis(1));
        assert_eq!(g2_rx.len(), 0, "no route yet");
        let misses = with_virt(&w, 0, |e| {
            assert_eq!(e.stats().misses, 1);
            e.take_pending_misses()
        });
        assert_eq!(misses, vec![g2]);

        // Control plane resolves and the guest retries.
        with_virt(&w, 0, |e| {
            e.install_route(g2, Route { host: 1, engine_key: KEY1 })
        });
        g1_tx.inject(w.sim.now(), guest_packet(g2, 100));
        w.groups[0].wake(&mut w.sim, w.engines[0]);
        w.sim.run_until(Nanos::from_millis(2));
        assert_eq!(g2_rx.len(), 1, "delivered after route install");
    }

    #[test]
    fn cross_tenant_traffic_is_dropped() {
        let mut w = world();
        let g1 = VirtAddr { tenant: 1, vip: 1 };
        let other_tenant = VirtAddr { tenant: 2, vip: 9 };
        let (g1_tx, _) = with_virt(&w, 0, |e| e.attach_guest(g1, 64));
        // Even with a route present, tenant isolation wins.
        with_virt(&w, 0, |e| {
            e.install_route(other_tenant, Route { host: 1, engine_key: KEY1 })
        });
        g1_tx.inject(w.sim.now(), guest_packet(other_tenant, 50));
        w.groups[0].wake(&mut w.sim, w.engines[0]);
        w.sim.run_until(Nanos::from_millis(1));
        with_virt(&w, 0, |e| {
            assert_eq!(e.stats().isolation_drops, 1);
            assert_eq!(e.stats().encapped, 0);
        });
    }

    #[test]
    fn unknown_destination_guest_counts_delivery_drop() {
        let mut w = world();
        let g1 = VirtAddr { tenant: 5, vip: 1 };
        let ghost = VirtAddr { tenant: 5, vip: 99 };
        let (g1_tx, _) = with_virt(&w, 0, |e| e.attach_guest(g1, 64));
        with_virt(&w, 0, |e| {
            e.install_route(ghost, Route { host: 1, engine_key: KEY1 })
        });
        g1_tx.inject(w.sim.now(), guest_packet(ghost, 50));
        w.groups[0].wake(&mut w.sim, w.engines[0]);
        w.sim.run_until(Nanos::from_millis(1));
        // Encapped at the source, dropped at the destination engine.
        with_virt(&w, 0, |e| assert_eq!(e.stats().encapped, 1));
        with_virt(&w, 1, |e| assert_eq!(e.stats().delivery_drops, 1));
    }

    #[test]
    fn flow_table_survives_upgrade_serialization() {
        let mut w = world();
        let g2 = VirtAddr { tenant: 9, vip: 2 };
        let g3 = VirtAddr { tenant: 9, vip: 3 };
        let snapshot = with_virt(&w, 0, |e| {
            e.install_route(g2, Route { host: 1, engine_key: KEY1 });
            e.install_route(g3, Route { host: 1, engine_key: KEY1 });
            e.serialize_state()
        });
        let mut fresh = VirtEngine::new("virt-v2", 0, 0xB0, 1, w.fabric.clone());
        fresh.restore_flows(&snapshot);
        assert_eq!(fresh.flow_count(), 2);
        let _ = &mut w;
    }

    #[test]
    fn encap_decap_roundtrip_preserves_payload() {
        let fabric = FabricHandle::new(FabricConfig::default());
        fabric.add_host(NicConfig::default());
        let engine = VirtEngine::new("v", 0, 1, 0, fabric);
        let src = VirtAddr { tenant: 4, vip: 10 };
        let dst = VirtAddr { tenant: 4, vip: 20 };
        let inner = guest_packet(dst, 123);
        let outer = engine.encap(src, dst, &inner, Route { host: 1, engine_key: 2 });
        assert_eq!(outer.wire_size, inner.wire_size + ENCAP_OVERHEAD);
        let (s, d, payload) = VirtEngine::decap(&outer.payload).expect("well-formed");
        assert_eq!(s, src);
        assert_eq!(d, dst);
        assert_eq!(payload.len(), 123);
        // Garbage does not decap.
        assert!(VirtEngine::decap(b"junk").is_none());
    }
}
