//! The kernel packet-injection path (§1, §2, Fig. 2).
//!
//! "For use cases that integrate with existing kernel functionality,
//! Snap supports an internally-developed driver for efficiently moving
//! packets between Snap and the kernel." Fig. 2 shows engines handling
//! "a subset of host kernel traffic that needs Snap-implemented traffic
//! shaping policies applied".
//!
//! [`KernelRing`] models the driver: a pair of lock-free packet rings
//! between the kernel stack and a Snap engine. [`InjectEngine`] is the
//! Snap engine that pulls kernel-egress packets, runs them through a
//! Click-style [`Pipeline`] (shaping, ACLs, counters), and transmits
//! the survivors onto the fabric — giving kernel TCP traffic Snap's
//! policy enforcement without touching the kernel stack itself.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use snap_nic::fabric::FabricHandle;
use snap_nic::packet::{HostId, Packet};
use snap_sim::costs;
use snap_sim::{Nanos, Sim};

use crate::elements::Pipeline;
use crate::engine::{Engine, RunReport};

/// One direction of the kernel↔Snap packet ring pair.
///
/// Simulator-side stand-in for the shared-memory packet rings the
/// paper's driver maps between kernel and userspace; bounded, FIFO,
/// drop-on-full (the kernel side treats it like a qdisc queue).
#[derive(Clone)]
pub struct KernelRing {
    inner: Rc<RefCell<RingInner>>,
}

struct RingInner {
    queue: VecDeque<(Nanos, Packet)>,
    capacity: usize,
    drops: u64,
}

impl KernelRing {
    /// Creates a ring holding up to `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        KernelRing {
            inner: Rc::new(RefCell::new(RingInner {
                queue: VecDeque::new(),
                capacity: capacity.max(1),
                drops: 0,
            })),
        }
    }

    /// Enqueues a packet from the kernel side; drops when full.
    ///
    /// Returns whether the packet was accepted.
    pub fn inject(&self, now: Nanos, pkt: Packet) -> bool {
        let mut r = self.inner.borrow_mut();
        if r.queue.len() >= r.capacity {
            r.drops += 1;
            return false;
        }
        r.queue.push_back((now, pkt));
        true
    }

    /// Dequeues up to `max` packets (engine side).
    pub fn drain(&self, max: usize, out: &mut Vec<(Nanos, Packet)>) -> usize {
        let mut r = self.inner.borrow_mut();
        let n = max.min(r.queue.len());
        out.extend(r.queue.drain(..n));
        n
    }

    /// Packets waiting.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True if no packets wait.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Packets dropped at the full ring.
    pub fn drops(&self) -> u64 {
        self.inner.borrow().drops
    }

    /// Age of the head packet.
    pub fn oldest_age(&self, now: Nanos) -> Nanos {
        self.inner
            .borrow()
            .queue
            .front()
            .map(|(t, _)| now.saturating_sub(*t))
            .unwrap_or(Nanos::ZERO)
    }
}

/// Counters for an [`InjectEngine`].
#[derive(Debug, Clone, Default)]
pub struct InjectStats {
    /// Packets pulled from the kernel ring.
    pub pulled: u64,
    /// Packets that cleared the pipeline and hit the fabric.
    pub transmitted: u64,
    /// Packets the pipeline dropped (ACL, shaper overflow).
    pub policy_drops: u64,
}

/// A Snap engine applying a policy pipeline to kernel egress traffic.
pub struct InjectEngine {
    name: String,
    host: HostId,
    queue: u16,
    ring: KernelRing,
    pipeline: Pipeline,
    fabric: FabricHandle,
    batch: usize,
    stats: InjectStats,
    buf: Vec<(Nanos, Packet)>,
}

impl InjectEngine {
    /// Creates the engine: packets from `ring` flow through `pipeline`
    /// and out of `host`'s NIC tx queue `queue`.
    pub fn new(
        name: impl Into<String>,
        host: HostId,
        queue: u16,
        ring: KernelRing,
        pipeline: Pipeline,
        fabric: FabricHandle,
    ) -> Self {
        InjectEngine {
            name: name.into(),
            host,
            queue,
            ring,
            pipeline,
            fabric,
            batch: costs::DEFAULT_POLL_BATCH,
            stats: InjectStats::default(),
            buf: Vec::new(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &InjectStats {
        &self.stats
    }

    /// The host whose kernel traffic this engine polices.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Pipeline stats access (e.g. shaper drops).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    fn transmit(&mut self, sim: &mut Sim, pkt: Packet) -> Nanos {
        match self.fabric.transmit(sim, self.queue, pkt) {
            Ok(()) => {
                self.stats.transmitted += 1;
                Nanos(costs::PONY_PER_PACKET_NS)
            }
            Err(_) => {
                // No tx slot: drop like an overflowing qdisc; kernel
                // TCP recovers via its own retransmission.
                self.stats.policy_drops += 1;
                Nanos(50)
            }
        }
    }
}

impl Engine for InjectEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, sim: &mut Sim) -> RunReport {
        let now = sim.now();
        let mut cpu = Nanos(costs::ENGINE_POLL_PASS_NS);
        self.buf.clear();
        let mut staged = std::mem::take(&mut self.buf);
        let n = self.ring.drain(self.batch, &mut staged);
        let mut work = n > 0;
        for (_, pkt) in staged.drain(..) {
            self.stats.pulled += 1;
            cpu += Nanos(300); // pipeline classification cost
            let before = self.stats.transmitted;
            for out in self.pipeline.push(pkt, now) {
                cpu += self.transmit(sim, out);
            }
            if self.stats.transmitted == before {
                // Held in a shaper or dropped by policy; distinguish by
                // the held count later (drops counted by the elements).
            }
        }
        self.buf = staged;
        // Release shaped packets whose tokens refilled.
        let released = self.pipeline.poll(now);
        work |= !released.is_empty();
        for out in released {
            cpu += self.transmit(sim, out);
        }
        let pending = self.ring.len();
        // A shaper holding packets needs a future poll; use its next
        // release as the self-timer.
        let next_deadline =
            (self.pipeline.held() > 0).then(|| now + Nanos::from_micros(10));
        RunReport {
            cpu,
            work_done: work,
            pending,
            next_deadline,
        }
    }

    fn pending_work(&self) -> usize {
        self.ring.len() + self.pipeline.held()
    }

    fn oldest_pending_age(&self, now: Nanos) -> Nanos {
        self.ring.oldest_age(now)
    }

    fn serialize_state(&mut self) -> Vec<u8> {
        // Policy engines are stateless modulo counters; shaper tokens
        // re-accumulate after migration.
        let mut w = snap_sim::codec::Writer::new();
        w.u64(self.stats.pulled)
            .u64(self.stats.transmitted)
            .u64(self.stats.policy_drops);
        w.finish()
    }

    fn detach(&mut self, _sim: &mut Sim) {}

    fn container(&self) -> &str {
        "kernel-inject"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{AclFilter, Counter, TokenBucket};
    use crate::group::{GroupConfig, GroupHandle, SchedulingMode};
    use bytes::Bytes;
    use snap_nic::fabric::FabricConfig;
    use snap_nic::nic::NicConfig;
    use snap_sched::machine::Machine;
    use snap_shm::account::CpuAccountant;

    fn world() -> (Sim, FabricHandle, GroupHandle, HostId, HostId) {
        let mut sim = Sim::new();
        let fabric = FabricHandle::new(FabricConfig::default());
        let a = fabric.add_host(NicConfig::default());
        let b = fabric.add_host(NicConfig::default());
        let machine = Rc::new(RefCell::new(Machine::new(4, 1)));
        let group = GroupHandle::new(
            GroupConfig::new("inject", SchedulingMode::Dedicated { cores: vec![0] }),
            machine,
            CpuAccountant::new(),
        );
        group.start(&mut sim);
        (sim, fabric, group, a, b)
    }

    fn kernel_packet(src: HostId, dst: HostId, len: usize) -> Packet {
        Packet::new(src, dst, Bytes::from(vec![0u8; len]))
    }

    #[test]
    fn kernel_traffic_flows_through_policy_to_fabric() {
        let (mut sim, fabric, group, a, b) = world();
        let ring = KernelRing::new(256);
        let pipeline = Pipeline::new().push_stage(Box::new(Counter::new()));
        let engine = InjectEngine::new("inj", a, 0, ring.clone(), pipeline, fabric.clone());
        let id = group.add_engine(Box::new(engine));

        for _ in 0..10 {
            assert!(ring.inject(sim.now(), kernel_packet(a, b, 500)));
        }
        group.wake(&mut sim, id);
        sim.run();
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 10);
        group.with_engine(id, |e| {
            let e = e.as_any().downcast_mut::<InjectEngine>().unwrap();
            assert_eq!(e.stats().pulled, 10);
            assert_eq!(e.stats().transmitted, 10);
        });
    }

    #[test]
    fn acl_policy_drops_forbidden_kernel_traffic() {
        let (mut sim, fabric, group, a, b) = world();
        let ring = KernelRing::new(256);
        let mut acl = AclFilter::new(true);
        acl.add_rule(None, Some(b)); // deny everything to host b
        let pipeline = Pipeline::new().push_stage(Box::new(acl));
        let engine = InjectEngine::new("inj", a, 0, ring.clone(), pipeline, fabric.clone());
        let id = group.add_engine(Box::new(engine));
        ring.inject(sim.now(), kernel_packet(a, b, 100));
        group.wake(&mut sim, id);
        sim.run();
        assert_eq!(fabric.with_nic(b, |n| n.rx_pending_total()), 0);
    }

    #[test]
    fn shaper_paces_kernel_egress() {
        let (mut sim, fabric, group, a, b) = world();
        let ring = KernelRing::new(1024);
        // 1 MB/s shaper, 2 KB burst: 100 x 1KB packets take ~100 ms.
        let pipeline =
            Pipeline::new().push_stage(Box::new(TokenBucket::new(1e6, 2e3, 1024)));
        let engine = InjectEngine::new("inj", a, 0, ring.clone(), pipeline, fabric.clone());
        let id = group.add_engine(Box::new(engine));
        for _ in 0..100 {
            ring.inject(sim.now(), kernel_packet(a, b, 1000));
        }
        group.wake(&mut sim, id);
        sim.run_until(Nanos::from_millis(10));
        let early = fabric.with_nic(b, |n| n.rx_pending_total());
        assert!(early < 15, "shaper must pace: {early} escaped in 10ms");
        sim.run_until(Nanos::from_millis(300));
        let done = fabric.with_nic(b, |n| n.rx_pending_total());
        assert!(done >= 95, "shaped traffic eventually delivered: {done}");
    }

    #[test]
    fn full_ring_backpressures_kernel() {
        let ring = KernelRing::new(2);
        let p = kernel_packet(1, 2, 10);
        assert!(ring.inject(Nanos::ZERO, p.clone()));
        assert!(ring.inject(Nanos::ZERO, p.clone()));
        assert!(!ring.inject(Nanos::ZERO, p));
        assert_eq!(ring.drops(), 1);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn ring_age_tracks_head() {
        let ring = KernelRing::new(8);
        assert!(ring.is_empty());
        ring.inject(Nanos(100), kernel_packet(1, 2, 10));
        assert_eq!(ring.oldest_age(Nanos(500)), Nanos(400));
    }
}
