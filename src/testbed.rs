//! Ready-made simulated deployments for examples, tests and benches.
//!
//! A [`Testbed`] is a rack: N hosts on one ToR switch, each with a
//! multi-queue NIC, a machine model, a Snap engine group, and a Pony
//! module wired to a shared fleet directory. Helper methods create
//! application engines/sessions, connect applications across hosts, and
//! drive the simulation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use snap_apps::dag::{DagEdge, DagError, DagRuntime, DagSpec};
use snap_apps::socket::{wire, SnapSocket, SocketError, SocketHost};
use snap_apps::transport::{Backend, PonyTransport, TcpRouter, TcpTransport, Transport};
use snap_apps::SimPump;

use snap_core::engine::EngineId;
use snap_core::group::{GroupConfig, GroupHandle, MachineHandle, SchedulingMode};
use snap_core::supervisor::{Supervisor, SupervisorConfig};
use snap_isolation::{AdmissionController, QuotaModule};
use snap_nic::fabric::{FabricConfig, FabricHandle};
use snap_nic::nic::NicConfig;
use snap_nic::packet::HostId;
use snap_pony::client::PonyClient;
use snap_pony::engine::PonyEngineConfig;
use snap_pony::module::{new_net, PonyModule, PonyNetHandle};
use snap_sched::machine::Machine;
use snap_shm::account::{CpuAccountant, MemoryAccountant};
use snap_shm::region::RegionRegistry;
use snap_sim::fault::{FaultEvent, FaultPlan};
use snap_sim::trace::TraceRecorder;
use snap_sim::{Nanos, Sim};
use snap_topo::ClosSpec;

use crate::health_rig::{HealthRig, HealthRigConfig, PROBER_APP};
use snap_obs::{CpuSampler, FlightRecorder, RecorderConfig};
use snap_tcp::stack::{TcpConfig, TcpHost};
use snap_telemetry::{Registry, StatsConfig, StatsModule, TraceModule};

/// Testbed construction parameters.
#[derive(Clone)]
pub struct TestbedConfig {
    /// Number of hosts on the rack.
    pub hosts: usize,
    /// NIC line rate per host, Gbps.
    pub nic_gbps: f64,
    /// Hardware threads per host.
    pub cores_per_host: usize,
    /// Engine-group scheduling mode used on every host.
    pub mode: SchedulingMode,
    /// Random per-packet loss probability on the fabric.
    pub loss: f64,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Install a per-host [`AdmissionController`] enforcing memory
    /// quotas on every engine (§2.5). Containers start unlimited, so
    /// enabling this alone changes no admission decisions — set
    /// policies (or inject memory-pressure faults) to constrain them.
    pub admission: bool,
    /// Head-sampling rate of the causal trace layer, in parts per
    /// million of ops (`1_000_000` traces everything, `0` disables
    /// tracing entirely). Sampling decisions hash off the master seed
    /// and never touch the simulation RNG streams, so any rate leaves
    /// modeled time byte-identical.
    pub trace_sample_ppm: u32,
    /// Fabric topology. `None` (the default) builds the classic
    /// single-switch rack; `Some(spec)` compiles a spine/leaf Clos and
    /// routes cross-rack traffic over its trunks. Hosts are assigned to
    /// racks in creation order (`rack = host / hosts_per_rack`), so
    /// `hosts` should normally be `racks * hosts_per_rack`.
    pub topology: Option<ClosSpec>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            hosts: 2,
            nic_gbps: 50.0,
            cores_per_host: 16,
            mode: SchedulingMode::Dedicated { cores: vec![0] },
            loss: 0.0,
            seed: 42,
            admission: false,
            trace_sample_ppm: 0,
            topology: None,
        }
    }
}

/// One simulated host.
pub struct TestHost {
    /// Fabric host id.
    pub id: HostId,
    /// The machine (cores, C-states, antagonists).
    pub machine: MachineHandle,
    /// The Snap engine group.
    pub group: GroupHandle,
    /// The Pony control module.
    pub module: PonyModule,
    /// Shared-memory regions registered on this host.
    pub regions: RegionRegistry,
    /// Per-container CPU accounting.
    pub cpu: CpuAccountant,
    /// Per-container memory accounting.
    pub memory: MemoryAccountant,
    /// Quota enforcement over this host's accountants, when the
    /// testbed was built with [`TestbedConfig::admission`].
    pub admission: Option<AdmissionController>,
}

/// A simulated rack running Snap.
pub struct Testbed {
    /// The discrete-event simulator.
    pub sim: Sim,
    /// The shared fabric.
    pub fabric: FabricHandle,
    /// All hosts, indexed by fabric host id.
    pub hosts: Vec<TestHost>,
    /// The fleet directory.
    pub net: PonyNetHandle,
    /// The rack-wide trace recorder, when tracing is enabled.
    pub recorder: Option<TraceRecorder>,
    /// Lazily created kernel-TCP routers, one per host that runs a
    /// TCP-backed facade app (a host runs one kernel stack).
    tcp_routers: HashMap<usize, TcpRouter>,
    /// Facade socket hosts by (host, app name). Ordered so the pump
    /// polls apps in a deterministic sequence (same seed ⇒ identical
    /// event order ⇒ identical latencies).
    apps: std::collections::BTreeMap<(usize, String), SocketHost>,
    cfg: TestbedConfig,
}

impl Testbed {
    /// Builds and starts a rack.
    pub fn new(cfg: TestbedConfig) -> Self {
        let fabric = FabricHandle::with_topology(
            FabricConfig {
                loss_prob: cfg.loss,
                seed: cfg.seed,
                ..FabricConfig::default()
            },
            cfg.topology.clone().unwrap_or_else(ClosSpec::single_rack),
        );
        let net = new_net();
        let mut sim = Sim::new();
        // One recorder spans the rack: it is the distributed-tracing
        // backend, with cross-host span assembly free in simulation.
        let recorder = (cfg.trace_sample_ppm > 0)
            .then(|| TraceRecorder::new(cfg.seed, cfg.trace_sample_ppm, 4096));
        if let Some(rec) = &recorder {
            fabric.set_recorder(rec.clone());
        }
        let mut hosts = Vec::with_capacity(cfg.hosts);
        for h in 0..cfg.hosts {
            let id = fabric.add_host(NicConfig {
                gbps: cfg.nic_gbps,
                num_queues: 8,
                ..NicConfig::default()
            });
            let machine: MachineHandle = Rc::new(RefCell::new(Machine::new(
                cfg.cores_per_host,
                cfg.seed ^ (h as u64 + 1),
            )));
            let cpu = CpuAccountant::new();
            let memory = MemoryAccountant::new();
            let group = GroupHandle::new(
                GroupConfig {
                    name: format!("pony-group-{h}"),
                    mode: cfg.mode.clone(),
                    class: None,
                },
                machine.clone(),
                cpu.clone(),
            );
            group.start(&mut sim);
            let regions = RegionRegistry::new(memory.clone());
            let mut module = PonyModule::new(
                id,
                fabric.clone(),
                regions.clone(),
                group.clone(),
                net.clone(),
            );
            let admission = cfg.admission.then(|| {
                let adm = AdmissionController::new(memory.clone(), cpu.clone());
                module.set_admission(adm.clone());
                adm
            });
            if let Some(rec) = &recorder {
                module.set_recorder(rec.clone());
            }
            hosts.push(TestHost {
                id,
                machine,
                group,
                module,
                regions,
                cpu,
                memory,
                admission,
            });
        }
        Testbed {
            sim,
            fabric,
            hosts,
            net,
            recorder,
            tcp_routers: HashMap::new(),
            apps: std::collections::BTreeMap::new(),
            cfg,
        }
    }

    /// A two-host testbed tracing every op — the quickest start for
    /// trace experiments.
    pub fn traced_pair() -> Self {
        Self::new(TestbedConfig {
            trace_sample_ppm: snap_sim::trace::TRACE_SAMPLE_SCALE,
            ..TestbedConfig::default()
        })
    }

    /// A [`TraceModule`] over the rack's trace recorder.
    ///
    /// # Panics
    ///
    /// Panics if the testbed was built with tracing disabled
    /// ([`TestbedConfig::trace_sample_ppm`] of zero).
    pub fn trace_module(&self) -> TraceModule {
        TraceModule::new(
            self.recorder
                .clone()
                .expect("testbed built with trace_sample_ppm > 0"),
        )
    }

    /// A two-host testbed with defaults — the quickest start.
    pub fn pair() -> Self {
        Self::new(TestbedConfig::default())
    }

    /// A multi-rack Clos testbed: `racks * hosts_per_rack` hosts behind
    /// leaf switches cross-connected by `spines` spines, otherwise
    /// default configuration. The paper-scale deployment of §5.2 is
    /// `Testbed::clos(7, 6, 3)` — 42 hosts.
    pub fn clos(racks: u32, hosts_per_rack: u32, spines: u32) -> Self {
        Self::new(TestbedConfig {
            hosts: (racks * hosts_per_rack) as usize,
            topology: Some(ClosSpec::clos(racks, hosts_per_rack, spines)),
            ..TestbedConfig::default()
        })
    }

    /// Creates a Pony engine + session for `app` on `host` and returns
    /// the client library handle.
    pub fn pony_app(
        &mut self,
        host: usize,
        app: &str,
        configure: impl FnOnce(&mut PonyEngineConfig),
    ) -> PonyClient {
        self.hosts[host].module.create_engine(app, configure);
        self.hosts[host]
            .module
            .open_session(app, 4096)
            .expect("engine just created")
    }

    /// Connects `app_a` on `host_a` to `app_b` on `host_b`; returns the
    /// connection id (valid at both ends).
    pub fn connect(&mut self, host_a: usize, app_a: &str, host_b: usize, app_b: &str) -> u64 {
        let remote = self.hosts[host_b].id;
        self.hosts[host_a]
            .module
            .connect(app_a, remote, app_b)
            .expect("both apps registered")
    }

    /// Creates a kernel-TCP stack on `host` (for baseline comparisons).
    /// The host's NIC interrupt handler is taken over by the TCP stack,
    /// so a host runs either TCP or Pony in a given experiment — as in
    /// the paper's evaluation.
    pub fn tcp_host(&mut self, host: usize, cfg: TcpConfig) -> TcpHost {
        TcpHost::new(
            self.hosts[host].id,
            self.fabric.clone(),
            self.hosts[host].machine.clone(),
            cfg,
        )
    }

    /// The host's kernel-TCP facade router, created on first use. All
    /// TCP-backed facade apps on a host share one stack, demuxed by
    /// connection.
    fn tcp_router(&mut self, host: usize) -> TcpRouter {
        if let Some(r) = self.tcp_routers.get(&host) {
            return r.clone();
        }
        let router = TcpRouter::new(self.tcp_host(host, TcpConfig::default()));
        self.tcp_routers.insert(host, router.clone());
        router
    }

    /// A facade socket host for `app` on `host` over `backend` — the
    /// byte-stream sockets API. `Backend::Pony` creates an engine +
    /// session under the hood; `Backend::Tcp` lazily creates the
    /// host's kernel stack and shares it across the host's TCP apps.
    /// Idempotent per (host, app): repeated calls return the same
    /// facade host.
    pub fn app(&mut self, host: usize, app: &str, backend: Backend) -> SocketHost {
        if let Some(existing) = self.apps.get(&(host, app.to_string())) {
            return existing.clone();
        }
        let transport: Box<dyn Transport> = match backend {
            Backend::Pony => Box::new(PonyTransport::new(self.pony_app(host, app, |_| {}))),
            Backend::Tcp => Box::new(TcpTransport::new(self.tcp_router(host))),
        };
        let sh = SocketHost::new(transport);
        self.apps.insert((host, app.to_string()), sh.clone());
        sh
    }

    /// Connects two facade apps (created with [`Testbed::app`]); both
    /// ends must use the same backend. Returns the dialing (client)
    /// socket; the remote app accepts the peer socket from its
    /// [`SocketHost::listener`].
    pub fn app_connect(
        &mut self,
        host_a: usize,
        app_a: &str,
        host_b: usize,
        app_b: &str,
    ) -> Result<SnapSocket, SocketError> {
        let a = self
            .apps
            .get(&(host_a, app_a.to_string()))
            .cloned()
            .ok_or(SocketError::NotConnected)?;
        let b = self
            .apps
            .get(&(host_b, app_b.to_string()))
            .cloned()
            .ok_or(SocketError::NotConnected)?;
        if a.backend() != b.backend() {
            return Err(SocketError::BackendMismatch);
        }
        let conn = match a.backend() {
            // Pony connections are bidirectional and valid at both ends.
            Backend::Pony => self.connect(host_a, app_a, host_b, app_b),
            // TCP: dial from a, pre-register the passive side on b so
            // it can send before the first packet arrives.
            Backend::Tcp => {
                let peer_a = self.hosts[host_a].id;
                let peer_b = self.hosts[host_b].id;
                let ra = self.tcp_router(host_a);
                let rb = self.tcp_router(host_b);
                let conn = ra.tcp().connect(peer_b);
                rb.tcp().accept(conn, peer_a);
                conn
            }
        };
        wire(&a, &b, conn)
    }

    /// Builds and wires a [`DagRuntime`] over `backend`: one facade app
    /// per service (named `{prefix}-s{i}`, pinned to the spec's host),
    /// one facade connection per edge. The identical spec runs
    /// unmodified over kernel TCP or Pony — only `backend` changes.
    pub fn dag(
        &mut self,
        prefix: &str,
        spec: &DagSpec,
        backend: Backend,
    ) -> Result<DagRuntime, DagError> {
        spec.validate()?;
        let names: Vec<String> = (0..spec.services.len())
            .map(|i| format!("{prefix}-s{i}"))
            .collect();
        let svc_hosts: Vec<usize> = spec.services.iter().map(|s| s.host).collect();
        for (i, name) in names.iter().enumerate() {
            self.app(svc_hosts[i], name, backend);
        }
        let mut edges = Vec::new();
        for (p, c) in spec.edge_list() {
            let parent_sock = self.app_connect(svc_hosts[p], &names[p], svc_hosts[c], &names[c])?;
            let child_sock = self
                .apps
                .get(&(svc_hosts[c], names[c].clone()))
                .and_then(|sh| sh.listener().accept())
                .ok_or(DagError::Socket(SocketError::NotConnected))?;
            edges.push(DagEdge {
                parent: p,
                child: c,
                parent_sock,
                child_sock,
            });
        }
        DagRuntime::new(spec.clone(), edges, self.cfg.seed, self.recorder.clone())
    }

    /// Runs the simulation for `ms` more milliseconds of virtual time.
    pub fn run_ms(&mut self, ms: u64) {
        let deadline = self.sim.now() + Nanos::from_millis(ms);
        self.sim.run_until(deadline);
    }

    /// Runs the simulation for `us` more microseconds of virtual time.
    pub fn run_us(&mut self, us: u64) {
        let deadline = self.sim.now() + Nanos::from_micros(us);
        self.sim.run_until(deadline);
    }

    /// Drives blocking-style facade calls (`recv_deadline`, workload
    /// `run`s): every timeout they observe is virtual time on this
    /// testbed's simulator, never wall time.
    pub fn as_pump(&mut self) -> &mut dyn SimPump {
        self
    }

    /// Stops group rebalancers (needed before a draining `sim.run()` on
    /// compacting-mode testbeds).
    pub fn stop_groups(&self) {
        for h in &self.hosts {
            h.group.stop();
        }
    }

    /// The configured scheduling mode.
    pub fn mode(&self) -> &SchedulingMode {
        &self.cfg.mode
    }

    /// Installs a fault plan: each scripted [`FaultEvent`] is mapped
    /// onto this rack's live fabric and engine groups at its scheduled
    /// virtual timestamp. Events naming hosts or engines that don't
    /// exist are ignored (randomized plans may over-approximate).
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let fabric = self.fabric.clone();
        let groups: Vec<GroupHandle> = self.hosts.iter().map(|h| h.group.clone()).collect();
        let admissions: Vec<Option<AdmissionController>> =
            self.hosts.iter().map(|h| h.admission.clone()).collect();
        plan.install(&mut self.sim, move |sim, ev| match *ev {
            FaultEvent::EngineCrash { host, engine } => {
                if let Some(g) = groups.get(host as usize) {
                    g.kill_engine(EngineId(engine));
                }
            }
            FaultEvent::EngineStall {
                host,
                engine,
                duration,
            } => {
                if let Some(g) = groups.get(host as usize) {
                    g.stall_engine(sim, EngineId(engine), duration);
                }
            }
            FaultEvent::NicQueueStall {
                host,
                queue,
                duration,
            } => {
                fabric.stall_queue_until(host, queue, sim.now() + duration);
            }
            FaultEvent::Partition { a, b } => fabric.partition(a, b),
            FaultEvent::Heal { a, b } => fabric.heal(a, b),
            FaultEvent::PartitionOneWay { from, to } => fabric.partition_oneway(from, to),
            FaultEvent::HealOneWay { from, to } => fabric.heal_oneway(from, to),
            FaultEvent::CorruptRate { prob } => fabric.set_corrupt_prob(prob),
            FaultEvent::MemoryPressure {
                host,
                ref container,
                fraction,
            } => {
                if let Some(Some(adm)) = admissions.get(host as usize) {
                    if let Some(name) = resolve_container(adm, container) {
                        adm.apply_pressure(&name, fraction);
                    }
                }
            }
            FaultEvent::ReleasePressure {
                host,
                ref container,
            } => {
                if let Some(Some(adm)) = admissions.get(host as usize) {
                    if let Some(name) = resolve_container(adm, container) {
                        adm.release_pressure(&name);
                    }
                }
            }
            FaultEvent::LinkLossy { from, to, prob } => {
                fabric.set_link_loss(from, to, prob);
            }
            FaultEvent::LinkJitter { from, to, dist } => {
                fabric.set_link_jitter(from, to, dist.median, dist.sigma);
            }
            FaultEvent::PauseStorm { host, duration } => {
                fabric.pause_host(host, sim.now() + duration);
            }
            FaultEvent::EngineSlowdown {
                host,
                engine,
                factor,
            } => {
                if let Some(g) = groups.get(host as usize) {
                    g.slow_engine(EngineId(engine), factor);
                }
            }
            // Topology arms. Trunk events are inert on a single-switch
            // fabric (no trunk is ever routed over); a brownout of rack
            // 0 browns out the lone ToR, which is the right degenerate
            // reading.
            FaultEvent::TrunkDown { leaf, spine } => fabric.fail_trunk(leaf, spine),
            FaultEvent::TrunkUp { leaf, spine } => fabric.restore_trunk(leaf, spine),
            FaultEvent::LeafBrownout {
                rack,
                drop_prob,
                extra,
            } => fabric.set_leaf_brownout(rack, drop_prob, extra),
        });
    }

    /// A [`QuotaModule`] over `host`'s admission controller — register
    /// it with a `SnapProcess` for RPC access, or drive its methods
    /// directly.
    ///
    /// # Panics
    ///
    /// Panics if the testbed was built without
    /// [`TestbedConfig::admission`].
    pub fn quota_module(&self, host: usize) -> QuotaModule {
        QuotaModule::new(
            self.hosts[host]
                .admission
                .clone()
                .expect("testbed built with admission enabled"),
        )
    }

    /// Builds the rack's prober + gray-failure-detection loop: a
    /// prober engine on every host, probing every directed link with
    /// small one-sided Reads, feeding a shared
    /// [`snap_health::HealthMonitor`], with a sweep loop that
    /// quarantines degraded links on the fabric. Call
    /// [`Testbed::health_watch_app`] to additionally probe (and
    /// proactively restart) workload engines, then
    /// [`HealthRig::start`]. Requires at least two hosts.
    pub fn health_rig(&mut self, cfg: HealthRigConfig) -> HealthRig {
        let probe_len = cfg.probe_len;
        let rig = HealthRig::new(cfg, self.fabric.clone());
        // Pass 1: a prober engine and a probe-target region per host.
        let mut regions = Vec::with_capacity(self.hosts.len());
        for host in &mut self.hosts {
            host.module.create_engine(PROBER_APP, |_| {});
            regions.push(crate::health_rig::register_probe_region(
                &host.regions,
                probe_len,
            ));
        }
        // Pass 2: one prober session per host, one connection per
        // directed pair (each direction probes independently, since
        // gray faults are directional).
        for i in 0..self.hosts.len() {
            let client = self.hosts[i]
                .module
                .open_session(PROBER_APP, 4096)
                .expect("prober engine just created");
            let mut peers = Vec::new();
            for (j, &region) in regions.iter().enumerate() {
                if i == j {
                    continue;
                }
                let remote = self.hosts[j].id;
                let conn = self.hosts[i]
                    .module
                    .connect(PROBER_APP, remote, PROBER_APP)
                    .expect("prober apps registered on every host");
                peers.push((remote, conn, region));
            }
            let from = self.hosts[i].id;
            rig.add_link_prober(from, client, peers);
        }
        rig
    }

    /// Adds a gray-failure probe on `app`'s (already supervised)
    /// workload engine: a second session submits no-op buffer posts
    /// whose dequeue latency senses slowdowns, and a degraded verdict
    /// makes `supervisor` proactively rebuild the engine from its last
    /// checkpoint.
    pub fn health_watch_app(
        &mut self,
        rig: &HealthRig,
        host: usize,
        app: &str,
        supervisor: &Supervisor,
    ) {
        let engine_id = self.hosts[host]
            .module
            .engine_for(app)
            .expect("app has an engine");
        let client = self.hosts[host]
            .module
            .open_session(app, 1024)
            .expect("app registered");
        rig.add_engine_probe(
            host as u32,
            engine_id,
            client,
            self.hosts[host].group.clone(),
            supervisor.clone(),
        );
    }

    /// Puts an app's engine on `host` under supervision: periodic
    /// checkpoints plus crash/wedge detection, restarting the engine
    /// from its last checkpoint via the Pony restart factory.
    pub fn supervise_app(&mut self, host: usize, app: &str, cfg: SupervisorConfig) -> Supervisor {
        let engine_id = self.hosts[host]
            .module
            .engine_for(app)
            .expect("app has an engine");
        let factory = self.hosts[host]
            .module
            .restart_factory(app)
            .expect("app registered");
        let supervisor = Supervisor::new(cfg);
        supervisor.watch(
            &mut self.sim,
            self.hosts[host].group.clone(),
            engine_id,
            factory,
        );
        supervisor.start(&mut self.sim);
        supervisor
    }

    /// Total Snap CPU seconds consumed on a host so far.
    pub fn host_cpu(&mut self, host: usize) -> snap_core::group::GroupCpu {
        let now = self.sim.now();
        self.hosts[host].group.cpu(now)
    }

    /// A [`StatsModule`] watching the whole rack: the fabric plus every
    /// Pony engine registered so far (labeled `h<host>.<app>`). Call
    /// after creating apps; the poll loop is *not* started — call
    /// [`StatsModule::start`] (periodic) or
    /// [`StatsModule::poll_once`] as the experiment needs.
    pub fn stats_module(&mut self, cfg: StatsConfig) -> StatsModule {
        let stats = StatsModule::new(cfg);
        stats.watch_fabric(self.fabric.clone());
        for (h, host) in self.hosts.iter().enumerate() {
            let mut seen: Vec<EngineId> = Vec::new();
            for (app, engine_id) in host.module.apps() {
                // A shared engine serves several apps; watch it once,
                // under the first app's label.
                if seen.contains(&engine_id) {
                    continue;
                }
                seen.push(engine_id);
                stats.watch_engine(&format!("h{h}.{app}"), host.group.clone(), engine_id);
            }
            if let Some(adm) = &host.admission {
                stats.watch_admission(&format!("h{h}"), adm.clone());
            }
            // Scheduling-delay distribution per host group, keyed by
            // mode: `sched.h<h>.<mode>.delay`.
            stats.watch_group(&format!("h{h}"), host.group.clone());
        }
        stats
    }

    /// A [`FlightRecorder`] over a fresh obs registry, pre-wired with
    /// a [`CpuSampler`] watching every host (labeled `h<h>`): each
    /// sample tick publishes per-core/per-engine CPU attribution
    /// before folding the registry into time series. The sampling loop
    /// is *not* started — call [`FlightRecorder::start`] (periodic on
    /// the configured cadence) or [`FlightRecorder::sample_once`] as
    /// the experiment needs.
    pub fn flight_recorder(&mut self, cfg: RecorderConfig) -> FlightRecorder {
        let registry = Registry::new();
        let recorder = FlightRecorder::new(cfg, registry.clone());
        let mut sampler = CpuSampler::new(registry);
        for (h, host) in self.hosts.iter().enumerate() {
            sampler.watch_host(&format!("h{h}"), host.group.clone(), host.machine.clone());
        }
        recorder.add_pre_sample(Box::new(move |sim| sampler.publish(sim.now())));
        recorder
    }
}

impl SimPump for Testbed {
    fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    fn pump_us(&mut self, us: u64) {
        self.run_us(us);
        // Every facade app's event loop runs each slice: retries fire
        // and acks drain even for apps no one is actively receiving
        // on. Deterministic (BTreeMap) order keeps runs reproducible.
        let apps: Vec<SocketHost> = self.apps.values().cloned().collect();
        for app in apps {
            app.poll(&mut self.sim);
        }
    }
}

/// Resolves a fault plan's container name against a host's admission
/// controller. Randomized plans use the positional convention `c<k>`
/// (the k-th registered container, sorted); anything else passes
/// through literally if registered. Unknown names resolve to `None`
/// (randomized plans over-approximate, same contract as unknown hosts).
fn resolve_container(adm: &AdmissionController, name: &str) -> Option<String> {
    let registered = adm.containers();
    if let Some(idx) = name
        .strip_prefix('c')
        .and_then(|rest| rest.parse::<usize>().ok())
    {
        return registered.get(idx).cloned();
    }
    registered.iter().find(|c| c.as_str() == name).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_pony::client::{PonyCommand, PonyCompletion};

    #[test]
    fn pair_testbed_messaging_works() {
        let mut tb = Testbed::pair();
        let mut a = tb.pony_app(0, "alpha", |_| {});
        let mut b = tb.pony_app(1, "beta", |_| {});
        let conn = tb.connect(0, "alpha", 1, "beta");
        a.submit(
            &mut tb.sim,
            PonyCommand::Send {
                conn,
                stream: 0,
                len: 64,
            },
        );
        tb.run_ms(5);
        assert!(b
            .take_completions()
            .iter()
            .any(|c| matches!(c, PonyCompletion::RecvMsg { len: 64, .. })));
        assert!(a
            .take_completions()
            .iter()
            .any(|c| matches!(c, PonyCompletion::OpDone { .. })));
    }

    #[test]
    fn cpu_accounting_flows_through() {
        let mut tb = Testbed::pair();
        let mut a = tb.pony_app(0, "alpha", |_| {});
        let _b = tb.pony_app(1, "beta", |_| {});
        let conn = tb.connect(0, "alpha", 1, "beta");
        for _ in 0..50 {
            a.submit(
                &mut tb.sim,
                PonyCommand::Send {
                    conn,
                    stream: 0,
                    len: 1000,
                },
            );
        }
        tb.run_ms(20);
        let cpu = tb.host_cpu(0);
        assert!(cpu.engine > Nanos::ZERO);
        // Engine CPU is charged to the app container.
        assert!(tb.hosts[0].cpu.usage("alpha") > 0);
    }
}
