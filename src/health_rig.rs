//! The prober application and quarantine loop, made first-class.
//!
//! Snap's production story (§5, §6) keeps tail latency bounded with a
//! prober app that continually exercises the fleet and health machinery
//! that reacts *before* customer traffic notices. A [`HealthRig`]
//! reproduces that loop on a [`Testbed`](crate::testbed::Testbed):
//!
//! * **Link probes** — one prober engine per host, sending small
//!   one-sided Reads across every directed host pair at a fixed
//!   cadence. Probes ride the same fabric as workload traffic
//!   (in-band, as in the paper), so a lossy or jittery link shows up in
//!   the probe stream exactly as it does to applications.
//! * **Engine probes** — a second session on a watched *workload*
//!   engine submitting no-op buffer posts; the submit-to-issue latency
//!   is the engine's dequeue delay, which balloons when the engine is
//!   gray (alive, heartbeating, pathologically slow).
//! * **Detection** — every probe outcome feeds a
//!   [`snap_health::HealthMonitor`]: phi-accrual over arrivals, loss
//!   ratio, and latency-over-baseline.
//! * **Reaction** — a periodic sweep turns verdicts into quarantine:
//!   degraded links go to [`FabricHandle::quarantine_link`] (reroute
//!   transport where an alternate path exists, shed best-effort);
//!   degraded engines go to [`Supervisor::quarantine`] (proactive
//!   rebuild from the last checkpoint).
//!
//! Determinism: the rig draws no randomness — probe cadence is fixed,
//! the monitor iterates targets in a fixed order, and probe ops flow
//! through the same simulated queues as everything else. Two runs of
//! the same seeded testbed with the rig attached are bit-identical.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use snap_core::engine::EngineId;
use snap_core::group::GroupHandle;
use snap_core::supervisor::Supervisor;
use snap_health::{HealthMonitor, HealthScore, MonitorConfig, Target};
use snap_nic::fabric::FabricHandle;
use snap_nic::packet::HostId;
use snap_pony::client::{OpStatus, PonyClient, PonyCommand, PonyCompletion};
use snap_shm::region::AccessMode;
use snap_sim::{Nanos, Sim};

/// Rig tuning.
#[derive(Debug, Clone)]
pub struct HealthRigConfig {
    /// Probe cadence per target (both links and engines).
    pub probe_interval: Nanos,
    /// A probe with no completion after this long counts as lost.
    pub probe_deadline: Nanos,
    /// How often verdicts are swept into quarantine actions.
    pub sweep_interval: Nanos,
    /// Bytes read per link probe.
    pub probe_len: u32,
    /// Detector thresholds.
    pub monitor: MonitorConfig,
}

impl Default for HealthRigConfig {
    fn default() -> Self {
        HealthRigConfig {
            probe_interval: Nanos::from_micros(50),
            probe_deadline: Nanos::from_micros(500),
            sweep_interval: Nanos::from_micros(200),
            probe_len: 64,
            monitor: MonitorConfig::default(),
        }
    }
}

/// App name used for the per-host prober engines.
pub const PROBER_APP: &str = "__prober";

/// Cap on unacknowledged probes per target: a black-holed target stops
/// accumulating queue pressure long before quarantine reacts.
const MAX_OUTSTANDING: usize = 32;

struct LinkPeer {
    to: HostId,
    conn: u64,
    /// The probe region registered on the destination host.
    region: u64,
}

struct LinkProber {
    from: HostId,
    client: PonyClient,
    peers: Vec<LinkPeer>,
    /// op id -> (target, submit time).
    pending: HashMap<u64, (Target, Nanos)>,
}

struct EngineProbe {
    host: u32,
    engine: EngineId,
    client: PonyClient,
    group: GroupHandle,
    supervisor: Supervisor,
    pending: HashMap<u64, Nanos>,
}

struct RigInner {
    cfg: HealthRigConfig,
    fabric: FabricHandle,
    link_probers: Vec<LinkProber>,
    engine_probes: Vec<EngineProbe>,
    quarantined_links: Vec<(HostId, HostId)>,
    quarantined_engines: Vec<(u32, u32)>,
    started: bool,
    stopped: bool,
}

/// Cloneable handle to the prober + detection + quarantine loop.
#[derive(Clone)]
pub struct HealthRig {
    monitor: Rc<RefCell<HealthMonitor>>,
    inner: Rc<RefCell<RigInner>>,
}

impl HealthRig {
    pub(crate) fn new(cfg: HealthRigConfig, fabric: FabricHandle) -> Self {
        let monitor = HealthMonitor::new(cfg.monitor.clone());
        HealthRig {
            monitor: Rc::new(RefCell::new(monitor)),
            inner: Rc::new(RefCell::new(RigInner {
                cfg,
                fabric,
                link_probers: Vec::new(),
                engine_probes: Vec::new(),
                quarantined_links: Vec::new(),
                quarantined_engines: Vec::new(),
                started: false,
                stopped: false,
            })),
        }
    }

    pub(crate) fn add_link_prober(
        &self,
        from: HostId,
        client: PonyClient,
        peers: Vec<(HostId, u64, u64)>,
    ) {
        let mut monitor = self.monitor.borrow_mut();
        let peers: Vec<LinkPeer> = peers
            .into_iter()
            .map(|(to, conn, region)| {
                monitor.track(Target::Link { from, to });
                LinkPeer { to, conn, region }
            })
            .collect();
        self.inner.borrow_mut().link_probers.push(LinkProber {
            from,
            client,
            peers,
            pending: HashMap::new(),
        });
    }

    pub(crate) fn add_engine_probe(
        &self,
        host: u32,
        engine: EngineId,
        client: PonyClient,
        group: GroupHandle,
        supervisor: Supervisor,
    ) {
        self.monitor.borrow_mut().track(Target::Engine {
            host,
            engine: engine.0,
        });
        self.inner.borrow_mut().engine_probes.push(EngineProbe {
            host,
            engine,
            client,
            group,
            supervisor,
            pending: HashMap::new(),
        });
    }

    /// Starts the probe and sweep loops. Idempotent.
    pub fn start(&self, sim: &mut Sim) {
        let (probe_iv, sweep_iv) = {
            let mut inner = self.inner.borrow_mut();
            if inner.started {
                return;
            }
            inner.started = true;
            (inner.cfg.probe_interval, inner.cfg.sweep_interval)
        };
        let rig = self.clone();
        snap_sim::event::every(sim, sim.now() + probe_iv, probe_iv, move |sim| {
            if rig.inner.borrow().stopped {
                return false;
            }
            rig.probe_tick(sim);
            true
        });
        let rig = self.clone();
        snap_sim::event::every(sim, sim.now() + sweep_iv, sweep_iv, move |sim| {
            if rig.inner.borrow().stopped {
                return false;
            }
            rig.sweep_tick(sim);
            true
        });
    }

    /// Stops both loops so a draining simulation can terminate.
    pub fn stop(&self) {
        self.inner.borrow_mut().stopped = true;
    }

    /// The shared detector — hand it to
    /// `StatsModule::watch_health` for `health.*` gauges, or read
    /// scores directly.
    pub fn monitor(&self) -> Rc<RefCell<HealthMonitor>> {
        self.monitor.clone()
    }

    /// Score snapshot for one target.
    pub fn score(&self, target: Target, now: Nanos) -> Option<HealthScore> {
        self.monitor.borrow().score(target, now)
    }

    /// Links quarantined so far, in detection order.
    pub fn quarantined_links(&self) -> Vec<(HostId, HostId)> {
        self.inner.borrow().quarantined_links.clone()
    }

    /// Engines quarantined so far (`(host, engine)`), in detection
    /// order.
    pub fn quarantined_engines(&self) -> Vec<(u32, u32)> {
        self.inner.borrow().quarantined_engines.clone()
    }

    /// Total quarantine actions taken.
    pub fn quarantines(&self) -> usize {
        let inner = self.inner.borrow();
        inner.quarantined_links.len() + inner.quarantined_engines.len()
    }

    /// One probe pass: harvest completions, expire deadlines, launch
    /// the next round of probes.
    fn probe_tick(&self, sim: &mut Sim) {
        let now = sim.now();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let mut monitor = self.monitor.borrow_mut();
        let deadline = inner.cfg.probe_deadline;
        let len = inner.cfg.probe_len;

        for p in &mut inner.link_probers {
            // Harvest: completion arrival closes the loop; latency is
            // engine-issue minus submit, independent of poll cadence.
            for c in p.client.take_completions_at(now) {
                let PonyCompletion::OpDone { op, status, issued_at, .. } = c else {
                    continue;
                };
                let Some((target, submitted)) = p.pending.remove(&op) else {
                    continue; // expired as lost; late reply ignored
                };
                match status {
                    OpStatus::Ok => {
                        monitor.record_success(target, now, issued_at.saturating_sub(submitted));
                    }
                    _ => monitor.record_loss(target, now),
                }
            }
            // Expire: a probe past its deadline is a loss even though
            // the reliable transport may still deliver it eventually —
            // the detector cares about timeliness, not delivery.
            let expired: Vec<u64> = p
                .pending
                .iter()
                .filter(|(_, (_, at))| now.saturating_sub(*at) > deadline)
                .map(|(&op, _)| op)
                .collect();
            for op in expired {
                if let Some((target, _)) = p.pending.remove(&op) {
                    monitor.record_loss(target, now);
                }
            }
            // Launch the next round: one probe per live peer link.
            for peer in &p.peers {
                let target = Target::Link {
                    from: p.from,
                    to: peer.to,
                };
                if monitor.latched(target) {
                    continue; // quarantined: reroute owns this link now
                }
                let outstanding = p.pending.values().filter(|(t, _)| *t == target).count();
                if outstanding >= MAX_OUTSTANDING {
                    continue;
                }
                let op = p.client.submit(
                    sim,
                    PonyCommand::Read {
                        conn: peer.conn,
                        region: peer.region,
                        offset: 0,
                        len,
                    },
                );
                p.pending.insert(op, (target, now));
            }
        }

        for e in &mut inner.engine_probes {
            let target = Target::Engine {
                host: e.host,
                engine: e.engine.0,
            };
            for c in e.client.take_completions_at(now) {
                let PonyCompletion::OpDone { op, issued_at, .. } = c else {
                    continue;
                };
                let Some(submitted) = e.pending.remove(&op) else {
                    continue;
                };
                // A no-op buffer post completes the moment the engine
                // dequeues it: issue minus submit IS the dequeue delay.
                monitor.record_success(target, now, issued_at.saturating_sub(submitted));
            }
            let expired: Vec<u64> = e
                .pending
                .iter()
                .filter(|(_, at)| now.saturating_sub(**at) > deadline)
                .map(|(&op, _)| op)
                .collect();
            for op in expired {
                e.pending.remove(&op);
                monitor.record_loss(target, now);
            }
            if monitor.latched(target) || e.pending.len() >= MAX_OUTSTANDING {
                continue;
            }
            let op = e.client.submit(
                sim,
                PonyCommand::PostRecvBuffers {
                    conn: u64::MAX,
                    count: 0,
                },
            );
            e.pending.insert(op, now);
        }
    }

    /// One sweep: turn newly-unhealthy verdicts into quarantine. The
    /// monitor latches each target, so one degradation episode yields
    /// exactly one action.
    ///
    /// Root-cause attribution: link probes share cores (and the wire)
    /// with everything else on their hosts, so a saturated gray engine
    /// drags every probe through its host into collateral degradation.
    /// Engine verdicts are therefore applied first, and a link verdict
    /// whose endpoint host has a sick engine is *suppressed* — its
    /// tracker is reset instead of quarantining an innocent link; a
    /// genuinely bad link re-converges from warmup after the engine
    /// rebuild.
    fn sweep_tick(&self, sim: &mut Sim) {
        let now = sim.now();
        let verdicts = self.monitor.borrow_mut().sweep(now);
        if verdicts.is_empty() {
            return;
        }
        let sick_hosts: Vec<u32> = verdicts
            .iter()
            .filter_map(|&(t, _)| match t {
                Target::Engine { host, .. } => Some(host),
                Target::Link { .. } => None,
            })
            .collect();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        for (target, _verdict) in &verdicts {
            let Target::Engine { host, engine } = *target else {
                continue;
            };
            let Some(e) = inner
                .engine_probes
                .iter_mut()
                .find(|e| e.host == host && e.engine.0 == engine)
            else {
                continue;
            };
            if e.supervisor.quarantine(sim, &e.group, e.engine) {
                inner.quarantined_engines.push((host, engine));
                // The rebuilt engine starts clean: drop stale probes
                // and re-arm detection from warmup.
                e.pending.clear();
                self.monitor.borrow_mut().reset(*target);
            }
        }
        for (target, _verdict) in &verdicts {
            let Target::Link { from, to } = *target else {
                continue;
            };
            if sick_hosts.contains(&from) || sick_hosts.contains(&to) {
                self.monitor.borrow_mut().reset(*target);
                continue;
            }
            inner.fabric.quarantine_link(from, to);
            inner.quarantined_links.push((from, to));
        }
    }
}

/// Registers the probe region for [`PROBER_APP`] on a host's region
/// registry; returns its id for remote Reads.
pub(crate) fn register_probe_region(
    regions: &snap_shm::region::RegionRegistry,
    len: u32,
) -> u64 {
    regions
        .register_with(
            PROBER_APP,
            vec![0xA5u8; (len as usize).max(64)],
            AccessMode::ReadOnly,
        )
        .0
}
