//! Mixed-fleet scenario: a microservice DAG, a KV cache, and a bulk
//! streamer co-scheduled on the same rack under per-container memory
//! quotas — the paper's picture of many applications sharing one Snap
//! deployment (§2.5, §5). All three workloads run over the Pony
//! backend so every app is a quota-enforced engine container; the
//! driver interleaves their ticks against one simulator, so the
//! contention (engine CPU, NIC, credits, quotas) is real.

use snap_apps::dag::{DagError, DagReport, DagSpec, OpenLoop};
use snap_apps::kv::{KvError, KvReport, KvSpec, KvWorkload};
use snap_apps::socket::SocketError;
use snap_apps::stream::{StreamError, StreamReport, StreamSpec, StreamWorkload};
use snap_apps::transport::Backend;
use snap_apps::SimPump;
use snap_isolation::QuotaPolicy;
use snap_sim::Nanos;

use crate::testbed::Testbed;

/// The co-scheduled fleet description.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The latency-sensitive microservice DAG (hosts per service are
    /// in the spec).
    pub dag: DagSpec,
    /// Open-loop load on the DAG root.
    pub dag_load: OpenLoop,
    /// The KV cache workload.
    pub kv: KvSpec,
    /// (client host, server host) for the KV cache.
    pub kv_hosts: (usize, usize),
    /// The bulk streaming workload.
    pub stream: StreamSpec,
    /// (producer host, consumer host) for the streamer.
    pub stream_hosts: (usize, usize),
    /// Per-app memory quota applied to every fleet container when the
    /// testbed enforces admission: (soft, hard) bytes.
    pub mem_quota: (u64, u64),
    /// Virtual-time budget for the whole scenario.
    pub budget: Nanos,
}

/// What broke, if anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// DAG workload failure.
    Dag(DagError),
    /// KV workload failure.
    Kv(KvError),
    /// Streaming workload failure.
    Stream(StreamError),
    /// Facade wiring failure.
    Socket(SocketError),
}

impl From<DagError> for FleetError {
    fn from(e: DagError) -> Self {
        FleetError::Dag(e)
    }
}
impl From<KvError> for FleetError {
    fn from(e: KvError) -> Self {
        FleetError::Kv(e)
    }
}
impl From<StreamError> for FleetError {
    fn from(e: StreamError) -> Self {
        FleetError::Stream(e)
    }
}
impl From<SocketError> for FleetError {
    fn from(e: SocketError) -> Self {
        FleetError::Socket(e)
    }
}

/// Per-workload outcomes of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// DAG end-to-end latency and critical-path breakdown.
    pub dag: DagReport,
    /// KV verification and latency.
    pub kv: KvReport,
    /// Streamer delivery.
    pub stream: StreamReport,
}

/// Runs the whole fleet to completion on `tb`. Every workload app is
/// a Pony engine container; if the testbed was built with admission
/// enabled, `spec.mem_quota` is applied to each one, so the streamer's
/// buffers and the DAG's bursts contend under real quota enforcement.
pub fn run_mixed_fleet(tb: &mut Testbed, spec: &FleetSpec) -> Result<FleetReport, FleetError> {
    // Wire the DAG first (apps fleet-dag-s0..), then KV and streamer.
    let mut dag = tb.dag("fleet-dag", &spec.dag, Backend::Pony)?;

    let (kv_ch, kv_sh) = spec.kv_hosts;
    tb.app(kv_ch, "fleet-kv-client", Backend::Pony);
    let kv_server_host = tb.app(kv_sh, "fleet-kv-server", Backend::Pony);
    let kv_client_sock = tb.app_connect(kv_ch, "fleet-kv-client", kv_sh, "fleet-kv-server")?;
    let kv_server_sock = kv_server_host
        .listener()
        .accept()
        .ok_or(FleetError::Socket(SocketError::NotConnected))?;
    let seed = 0xf1ee7 ^ spec.dag_load.requests;
    let mut kv = KvWorkload::new(spec.kv.clone(), kv_client_sock, kv_server_sock, seed);

    let (st_ph, st_ch) = spec.stream_hosts;
    tb.app(st_ph, "fleet-streamer", Backend::Pony);
    let st_consumer_host = tb.app(st_ch, "fleet-stream-sink", Backend::Pony);
    let st_tx = tb.app_connect(st_ph, "fleet-streamer", st_ch, "fleet-stream-sink")?;
    let st_rx = st_consumer_host
        .listener()
        .accept()
        .ok_or(FleetError::Socket(SocketError::NotConnected))?;
    let mut stream = StreamWorkload::new(spec.stream.clone(), st_tx, st_rx, seed ^ 1);

    // Quota every fleet container (no-op unless the testbed enforces
    // admission).
    let (soft, hard) = spec.mem_quota;
    for host in &tb.hosts {
        if let Some(adm) = &host.admission {
            for container in adm.containers() {
                if container.starts_with("fleet-") {
                    adm.set_policy(&container, QuotaPolicy::with_mem(soft, hard));
                }
            }
        }
    }

    // Interleave all three workloads against one simulator.
    let start = tb.sim.now();
    let deadline = start + spec.budget;
    dag.begin(start, spec.dag_load);
    kv.begin(start);
    stream.begin(start);
    loop {
        dag.tick(&mut tb.sim)?;
        kv.tick(&mut tb.sim)?;
        stream.tick(&mut tb.sim)?;
        if dag.done() && kv.done() && stream.done() {
            break;
        }
        if tb.sim.now() >= deadline {
            // Name the workload that actually stalled.
            if !dag.done() {
                return Err(FleetError::Dag(DagError::Incomplete {
                    completed: dag.results().len() as u64,
                    expected: spec.dag_load.requests,
                }));
            }
            if !kv.done() {
                let answered = kv.summary().verified;
                return Err(FleetError::Kv(KvError::Incomplete {
                    answered,
                    expected: spec.kv.requests,
                }));
            }
            let received = stream.summary().bytes;
            return Err(FleetError::Stream(StreamError::Incomplete {
                received,
                expected: spec.stream.records * spec.stream.record_bytes as u64,
            }));
        }
        // pump_us (not run_us): every facade event loop must be polled
        // each slice or send-side window/retry events never fire.
        tb.pump_us(5);
    }

    Ok(FleetReport {
        dag: DagReport::from_results(dag.results().to_vec()),
        kv: kv.summary(),
        stream: stream.summary(),
    })
}
