//! # snap-repro
//!
//! A from-scratch Rust reproduction of *"Snap: a Microkernel Approach
//! to Host Networking"* (Marty, de Kruijf, et al., SOSP 2019).
//!
//! This umbrella crate re-exports the workspace and provides
//! [`testbed`]: a convenience layer that assembles complete simulated
//! deployments (hosts + NICs + fabric + Snap processes + Pony Express
//! engines + applications) with a few lines of code. The examples,
//! integration tests, and every paper-figure bench build on it.
//!
//! See `DESIGN.md` for the system inventory and the experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use snap_apps as apps;
pub use snap_core as core;
pub use snap_isolation as isolation;
pub use snap_nic as nic;
pub use snap_pony as pony;
pub use snap_sched as sched;
pub use snap_shm as shm;
pub use snap_sim as sim;
pub use snap_tcp as tcp;
pub use snap_telemetry as telemetry;
pub use snap_topo as topo;

pub use snap_health as health;
pub use snap_obs as obs;

pub mod fleet;
pub mod health_rig;
pub mod testbed;
