//! The three engine scheduling modes (§2.4) exercised through real
//! Pony Express traffic: dedicated cores, spreading, compacting.

use snap_repro::core::group::SchedulingMode;
use snap_repro::pony::client::{PonyCommand, PonyCompletion};
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};

fn run_traffic(mode: SchedulingMode, msgs: usize) -> (Testbed, usize) {
    let mut tb = Testbed::new(TestbedConfig {
        mode,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 1024 });
    for _ in 0..msgs {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 10_000 });
    }
    tb.run_ms(200);
    let delivered = b
        .take_completions()
        .into_iter()
        .filter(|c| matches!(c, PonyCompletion::RecvMsg { .. }))
        .count();
    (tb, delivered)
}

#[test]
fn dedicated_mode_delivers_everything() {
    let (_, delivered) = run_traffic(SchedulingMode::Dedicated { cores: vec![0] }, 50);
    assert_eq!(delivered, 50);
}

#[test]
fn spreading_mode_delivers_everything() {
    let (_, delivered) = run_traffic(SchedulingMode::Spreading, 50);
    assert_eq!(delivered, 50);
}

#[test]
fn compacting_mode_delivers_everything() {
    let (_, delivered) = run_traffic(SchedulingMode::compacting_default(), 50);
    assert_eq!(delivered, 50);
}

#[test]
fn spreading_pays_wake_overhead_dedicated_burns_spin() {
    let (mut tb_spread, _) = run_traffic(SchedulingMode::Spreading, 30);
    let (mut tb_ded, _) = run_traffic(SchedulingMode::Dedicated { cores: vec![0] }, 30);
    let spread = tb_spread.host_cpu(0);
    let ded = tb_ded.host_cpu(0);
    assert!(spread.wake_overhead > Nanos::ZERO, "spreading wakes via interrupts");
    // Spreading workers only poll-wait through sub-5us pacing gaps;
    // their spin time stays negligible next to a dedicated core.
    assert!(
        spread.spin < Nanos::from_millis(1),
        "spreading spin {:?} should be bounded to pacing poll-waits",
        spread.spin
    );
    assert_eq!(ded.wake_overhead, Nanos::ZERO, "dedicated never blocks");
    assert!(ded.spin > Nanos::ZERO, "dedicated burns its core while idle");
    // The dedicated core burns ~the whole 200ms window; spreading's
    // total is far below that (the CPU-scaling claim of Fig. 3).
    assert!(
        spread.total() * 5 < ded.total(),
        "spreading {:?} should consume far less than dedicated {:?}",
        spread.total(),
        ded.total()
    );
}

#[test]
fn compacting_scales_below_a_full_core_when_idle() {
    let (mut tb, _) = run_traffic(SchedulingMode::compacting_default(), 10);
    let cpu = tb.host_cpu(0);
    // 200 ms window; traffic lasts ~a few ms. With idle-blocking the
    // spin time must be a small fraction of the window.
    assert!(
        cpu.total() < Nanos::from_millis(50),
        "compacting total {:?} should stay well under the 200ms window",
        cpu.total()
    );
}

#[test]
fn compacting_scales_out_under_multi_engine_load() {
    let mut tb = Testbed::new(TestbedConfig {
        mode: SchedulingMode::Compacting {
            slo: Nanos::from_micros(20),
            rebalance_poll: Nanos::from_micros(10),
            idle_block: Nanos::from_millis(1),
        },
        ..TestbedConfig::default()
    });
    // Two engines on host 0, both under sustained load.
    let mut a1 = tb.pony_app(0, "job1", |_| {});
    let mut a2 = tb.pony_app(0, "job2", |_| {});
    let mut b1 = tb.pony_app(1, "sink1", |_| {});
    let mut b2 = tb.pony_app(1, "sink2", |_| {});
    let c1 = tb.connect(0, "job1", 1, "sink1");
    let c2 = tb.connect(0, "job2", 1, "sink2");
    b1.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn: c1, count: 4096 });
    b2.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn: c2, count: 4096 });
    assert_eq!(tb.hosts[0].group.worker_count(), 1, "starts compacted");
    for round in 0..40 {
        a1.submit(&mut tb.sim, PonyCommand::Send { conn: c1, stream: 0, len: 500_000 });
        a2.submit(&mut tb.sim, PonyCommand::Send { conn: c2, stream: 0, len: 500_000 });
        tb.run_us(500);
        let _ = round;
    }
    tb.run_ms(100);
    assert!(
        tb.hosts[0].group.worker_count() >= 2,
        "sustained two-engine load must scale out"
    );
    let d1 = b1.take_completions().iter().filter(|c| matches!(c, PonyCompletion::RecvMsg { .. })).count();
    let d2 = b2.take_completions().iter().filter(|c| matches!(c, PonyCompletion::RecvMsg { .. })).count();
    assert_eq!(d1 + d2, 80, "all RPCs delivered while scaling");
}

#[test]
fn sched_delay_histograms_differ_across_modes() {
    // The wake()-recorded scheduling delays are what distinguish the
    // three modes at the metric level: dedicated wakes cost a fixed
    // 200ns spin pickup, spreading pays interrupt wake latency (~us),
    // compacting mixes both as workers block and unblock.
    let (tb_ded, _) = run_traffic(SchedulingMode::Dedicated { cores: vec![0] }, 30);
    let (tb_spread, _) = run_traffic(SchedulingMode::Spreading, 30);
    let (tb_comp, _) = run_traffic(SchedulingMode::compacting_default(), 30);
    let ded = tb_ded.hosts[0].group.sched_delay_histogram();
    let spread = tb_spread.hosts[0].group.sched_delay_histogram();
    let comp = tb_comp.hosts[0].group.sched_delay_histogram();
    assert!(ded.count() > 0 && spread.count() > 0 && comp.count() > 0);
    assert!(
        ded.median() < spread.median(),
        "dedicated spin pickup ({}ns p50) must beat spreading interrupt wakes ({}ns p50)",
        ded.median(),
        spread.median()
    );
    // Mode labels key the exported metric names.
    assert_eq!(tb_ded.hosts[0].group.mode_label(), "dedicated");
    assert_eq!(tb_spread.hosts[0].group.mode_label(), "spreading");
    assert_eq!(tb_comp.hosts[0].group.mode_label(), "compacting");
}

#[test]
fn sched_delay_flows_into_stats_module() {
    let mut tb = Testbed::new(TestbedConfig {
        mode: SchedulingMode::Spreading,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });
    let stats = tb.stats_module(snap_repro::telemetry::StatsConfig::default());
    for _ in 0..20 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 10_000 });
    }
    tb.run_ms(50);
    stats.poll_once(&mut tb.sim);
    let snap = stats.snapshot(tb.sim.now());
    let h = snap
        .histogram("sched.h0.spreading.delay")
        .expect("group watch publishes the mode-keyed histogram");
    assert!(h.count() > 0, "wakes were recorded in the window");
}

#[test]
fn microquanta_budget_throttles_dedicated_free_engines_unaffected() {
    // Sanity of the budget wiring: spreading-mode workers run under a
    // MicroQuanta budget (90% of a core); dedicated ones do not.
    // Saturating traffic must still complete, just with throttle gaps.
    let (_, delivered) = run_traffic(SchedulingMode::Spreading, 100);
    assert_eq!(delivered, 100);
}
