//! End-to-end causal op tracing: deterministic cross-host span
//! assembly, the breakdown-sums-exactly invariant, fault-artifact
//! tail retention, and the trace control-plane module.

use proptest::prelude::*;

use snap_repro::isolation::QuotaPolicy;
use snap_repro::pony::client::{OpStatus, PonyCommand, PonyCompletion};
use snap_repro::sim::trace::{Stage, TraceRecorder, TRACE_SAMPLE_SCALE};
use snap_repro::telemetry::render_trace;
use snap_repro::testbed::{Testbed, TestbedConfig};

/// Runs a mixed read/send workload on a fully-traced pair and returns
/// the testbed (recorder inside).
fn traced_workload(seed: u64, loss: f64, msgs: usize, len: u64) -> Testbed {
    let mut tb = Testbed::new(TestbedConfig {
        loss,
        seed,
        trace_sample_ppm: TRACE_SAMPLE_SCALE,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 1024 });
    let region = tb.hosts[1]
        .regions
        .register_with("server", (0u8..128).collect(), snap_repro::shm::region::AccessMode::ReadOnly);
    for i in 0..msgs {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len });
        if i % 2 == 0 {
            a.submit(
                &mut tb.sim,
                PonyCommand::Read { conn, region: region.0, offset: 8, len: 32 },
            );
        }
        tb.run_us(200);
    }
    tb.run_ms(100);
    let _ = a.take_completions();
    let _ = b.take_completions();
    tb
}

/// Renders every completed trace, sorted by trace id — the full span
/// forest as one string.
fn render_all(rec: &TraceRecorder) -> String {
    let mut traces = rec.completed();
    traces.sort_by_key(|t| t.trace_id);
    traces.iter().map(render_trace).collect()
}

#[test]
fn same_seed_assembles_byte_identical_span_trees() {
    let a = traced_workload(7, 0.02, 10, 20_000);
    let b = traced_workload(7, 0.02, 10, 20_000);
    let ra = a.recorder.as_ref().expect("tracing enabled");
    let rb = b.recorder.as_ref().expect("tracing enabled");
    assert!(ra.finalized() > 0, "workload finalized traces");
    assert_eq!(ra.finalized(), rb.finalized());
    let text_a = render_all(ra);
    let text_b = render_all(rb);
    assert!(!text_a.is_empty());
    assert_eq!(text_a, text_b, "same seed must assemble identical span trees");
    // A different seed takes a different path (loss pattern, at least).
    let c = traced_workload(8, 0.02, 10, 20_000);
    let text_c = render_all(c.recorder.as_ref().expect("tracing enabled"));
    assert_ne!(text_a, text_c, "different seed should differ somewhere");
}

#[test]
fn traces_cover_both_hosts_and_the_fabric() {
    let tb = traced_workload(42, 0.0, 6, 10_000);
    let rec = tb.recorder.as_ref().expect("tracing enabled");
    let full = rec
        .completed()
        .into_iter()
        .find(|t| t.hosts().len() >= 3)
        .expect("some op crossed client -> fabric -> server");
    let stages: Vec<Stage> = full.records.iter().map(|r| r.stage).collect();
    assert_eq!(stages[0], Stage::ClientEnqueue);
    assert_eq!(*stages.last().expect("non-empty"), Stage::Complete);
    for want in [Stage::EngineDequeue, Stage::NicTx, Stage::SwitchArrive, Stage::SwitchDepart, Stage::NicDeliver, Stage::RemoteDequeue] {
        assert!(stages.contains(&want), "missing {want:?} in {stages:?}");
    }
}

#[test]
fn lossy_run_tail_retains_retransmit_spans() {
    // 1% head sampling but 15% loss: retransmitted ops must be retained
    // through the tail-biased path regardless of the head verdict.
    let mut tb = Testbed::new(TestbedConfig {
        loss: 0.15,
        seed: 11,
        trace_sample_ppm: 10_000,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 1024 });
    for _ in 0..30 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 20_000 });
        tb.run_us(300);
    }
    tb.run_ms(300);
    let rec = tb.recorder.as_ref().expect("tracing enabled");
    let faulted: Vec<_> = rec.completed().into_iter().filter(|t| t.faulted).collect();
    assert!(
        !faulted.is_empty(),
        "15% loss over 30 sends must tail-retain at least one faulted trace"
    );
    assert!(
        faulted.iter().any(|t| t
            .records
            .iter()
            .any(|r| r.stage == Stage::Retransmit || r.stage == Stage::WireDrop)),
        "a faulted trace carries its fault-artifact stage"
    );
    assert!(rec.tail_retained() > 0, "tail retention counted");
}

#[test]
fn busy_refusal_traces_are_captured() {
    let mut tb = Testbed::new(TestbedConfig {
        admission: true,
        trace_sample_ppm: TRACE_SAMPLE_SCALE,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 64 });
    let adm = tb.hosts[0].admission.clone().expect("admission enabled");
    // Hard line below one send: the transport op is refused up front.
    adm.set_policy("client", QuotaPolicy::with_mem(4_000, 5_000));
    let op = a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 20_000 });
    tb.run_ms(10);
    let status = a
        .take_completions()
        .into_iter()
        .find_map(|c| match c {
            PonyCompletion::OpDone { op: o, status, .. } if o == op => Some(status),
            _ => None,
        })
        .expect("busy completion");
    assert_eq!(status, OpStatus::Busy);
    let rec = tb.recorder.as_ref().expect("tracing enabled");
    let busy_trace = rec
        .completed()
        .into_iter()
        .find(|t| t.records.iter().any(|r| r.stage == Stage::Busy))
        .expect("the refused op left a Busy span");
    assert!(busy_trace.faulted, "refusals are fault artifacts");
    // Even a refusal's breakdown telescopes exactly.
    let sum: u64 = busy_trace.breakdown().iter().map(|(_, d)| d.as_nanos()).sum();
    assert_eq!(sum, busy_trace.total().as_nanos());
}

#[test]
fn trace_module_serves_top_slowest_with_breakdowns() {
    let tb = traced_workload(42, 0.0, 8, 30_000);
    let module = tb.trace_module();
    let top = module.render_top(3);
    assert!(top.contains("top 3 of"), "{top}");
    assert!(top.contains("breakdown (sums to"), "{top}");
    let stats = module.render_stage_stats();
    assert!(stats.contains("engine_dequeue"), "{stats}");
    assert!(stats.contains("p99_ns"), "{stats}");
    // Top-1 really is the slowest retained trace.
    let rec = module.recorder();
    let slowest = rec.top_slowest(1).remove(0);
    assert!(rec
        .completed()
        .iter()
        .all(|t| t.total() <= slowest.total()));
}

proptest! {
    /// The critical-path breakdown of every assembled trace sums
    /// EXACTLY to its end-to-end modeled latency — across random
    /// workload shapes, loss rates and seeds.
    #[test]
    fn breakdown_sums_exactly_to_end_to_end_latency(
        seed in 0u64..500,
        msgs in 1usize..6,
        len in 500u64..40_000,
        lossy in any::<bool>(),
    ) {
        let loss = if lossy { 0.08 } else { 0.0 };
        let tb = traced_workload(seed, loss, msgs, len);
        let rec = tb.recorder.as_ref().expect("tracing enabled");
        prop_assert!(rec.finalized() > 0);
        for t in rec.completed() {
            let sum: u64 = t.breakdown().iter().map(|(_, d)| d.as_nanos()).sum();
            prop_assert_eq!(
                sum,
                t.total().as_nanos(),
                "trace {} breakdown must telescope exactly", t.trace_id
            );
            // Assembled order is causal: records sorted by time.
            for pair in t.records.windows(2) {
                prop_assert!(pair[0].at <= pair[1].at);
            }
        }
    }
}
