//! CPU/memory accounting (§2.5) and the kernel-TCP baseline compared
//! against Pony Express (§5.1's headline efficiency claim).

use std::cell::Cell;
use std::rc::Rc;

use snap_repro::pony::client::{PonyCommand, PonyCompletion};
use snap_repro::shm::region::AccessMode;
use snap_repro::sim::costs;
use snap_repro::sim::Nanos;
use snap_repro::tcp::stack::TcpConfig;
use snap_repro::testbed::Testbed;

#[test]
fn engine_cpu_charged_to_app_containers() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "websearch", |_| {});
    let _b = tb.pony_app(1, "storage", |_| {});
    let conn = tb.connect(0, "websearch", 1, "storage");
    for _ in 0..100 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 1_000 });
    }
    tb.run_ms(50);
    // Sender engine CPU charged to websearch; receiver engine CPU to
    // storage — softirq-style misattribution is exactly what §2.5 says
    // Snap fixes.
    assert!(tb.hosts[0].cpu.usage("websearch") > 0);
    assert!(tb.hosts[1].cpu.usage("storage") > 0);
    assert_eq!(tb.hosts[0].cpu.usage("storage"), 0);
}

#[test]
fn region_memory_charged_and_released() {
    let mut tb = Testbed::pair();
    let _b = tb.pony_app(1, "kv", |_| {});
    let before = tb.hosts[1].memory.usage("kv");
    let region = tb.hosts[1].regions.register("kv", 1 << 20, AccessMode::ReadWrite);
    assert_eq!(tb.hosts[1].memory.usage("kv"), before + (1 << 20));
    tb.hosts[1].regions.deregister(region);
    assert_eq!(tb.hosts[1].memory.usage("kv"), before);
}

/// Runs a saturating one-way bulk transfer over kernel TCP and over
/// Snap/Pony on identical fabrics, and compares Gbps per CPU-second —
/// the paper's "3x better transport processing efficiency" claim.
#[test]
fn pony_beats_tcp_on_gbps_per_core() {
    const BYTES: u64 = 40_000_000;

    // Kernel TCP.
    let mut tb = Testbed::pair();
    let tcp_a = tb.tcp_host(0, TcpConfig::default());
    let tcp_b = tb.tcp_host(1, TcpConfig::default());
    let done = Rc::new(Cell::new((0u64, Nanos::ZERO)));
    let d = done.clone();
    tcp_b.on_message(Rc::new(move |sim, _c, _m, len| {
        let (bytes, _) = d.get();
        d.set((bytes + len, sim.now()));
    }));
    let conn = tcp_a.connect(tb.hosts[1].id);
    for m in 0..(BYTES / 1_000_000) {
        tcp_a.send(&mut tb.sim, conn, m, 1_000_000);
    }
    tb.run_ms(1_000);
    let (tcp_bytes, tcp_done) = done.get();
    assert_eq!(tcp_bytes, BYTES, "TCP transfer completed");
    let tcp_gbps = tcp_bytes as f64 * 8.0 / tcp_done.as_secs_f64() / 1e9;
    let tcp_cpu = (tcp_a.cpu_busy() + tcp_b.cpu_busy()).as_secs_f64();
    let tcp_eff = tcp_bytes as f64 * 8.0 / 1e9 / tcp_cpu; // Gbit per cpu-sec

    // Snap/Pony, large MTU (the deployed configuration of §5.2).
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |cfg| cfg.mtu = costs::PONY_LARGE_MTU);
    let mut b = tb.pony_app(1, "b", |cfg| cfg.mtu = costs::PONY_LARGE_MTU);
    let conn = tb.connect(0, "a", 1, "b");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 4096 });
    for _ in 0..(BYTES / 1_000_000) {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 1_000_000 });
    }
    let mut pony_bytes = 0u64;
    let mut pony_done = Nanos::ZERO;
    while pony_bytes < BYTES {
        tb.run_ms(10);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { len, .. } = c {
                pony_bytes += len;
                pony_done = tb.sim.now();
            }
        }
        assert!(tb.sim.now() < Nanos::from_secs(5), "pony transfer stalled");
    }
    let pony_gbps = pony_bytes as f64 * 8.0 / pony_done.as_secs_f64() / 1e9;
    // Engine CPU only (spin time excluded to measure transport
    // processing efficiency, as Table 1 does for the busy engine).
    let cpu0 = tb.host_cpu(0);
    let cpu1 = tb.host_cpu(1);
    let pony_cpu = (cpu0.engine + cpu1.engine).as_secs_f64();
    let pony_eff = pony_bytes as f64 * 8.0 / 1e9 / pony_cpu;

    assert!(
        pony_eff > 2.0 * tcp_eff,
        "Pony efficiency {pony_eff:.1} Gb/cpu-s must be >2x TCP {tcp_eff:.1} \
         (throughputs: pony {pony_gbps:.1} Gbps, tcp {tcp_gbps:.1} Gbps)"
    );
    assert!(
        pony_gbps > tcp_gbps,
        "Pony {pony_gbps:.1} Gbps should beat TCP {tcp_gbps:.1} Gbps"
    );
}

#[test]
fn tcp_busy_poll_reduces_latency() {
    // Fig. 6(a): busy-polling sockets cut TCP RTT from ~23us to ~18us.
    fn tcp_rtt(busy_poll: bool) -> f64 {
        let mut tb = Testbed::pair();
        let cfg = TcpConfig {
            busy_poll,
            ..TcpConfig::default()
        };
        let a = tb.tcp_host(0, cfg.clone());
        let b = tb.tcp_host(1, cfg);
        // Echo server: reply on the same connection (the receive side
        // materialized its state from the first packet).
        let b2 = b.clone();
        b.on_message(Rc::new(move |sim, conn_key, msg, _len| {
            b2.send(sim, conn_key, msg + 1_000, 64);
        }));
        let rtt = Rc::new(Cell::new(Nanos::ZERO));
        let r = rtt.clone();
        a.on_message(Rc::new(move |sim, _c, _m, _l| r.set(sim.now())));
        let conn = a.connect(tb.hosts[1].id);
        a.send(&mut tb.sim, conn, 1, 64);
        tb.run_ms(10);
        rtt.get().as_micros_f64()
    }
    let normal = tcp_rtt(false);
    let polled = tcp_rtt(true);
    assert!(normal > 0.0 && polled > 0.0, "echo completed");
    assert!(
        polled < normal,
        "busy-poll RTT {polled:.1}us should beat {normal:.1}us"
    );
}
