//! Application-facade tests: byte-stream equivalence across backends,
//! sim-time deadline semantics, DAG determinism, and exactly-once DAG
//! completion under randomized gray faults.

use proptest::prelude::*;

use snap_repro::apps::dag::{DagSpec, OpenLoop, ServiceSpec, ServiceTime};
use snap_repro::apps::kv::KvSpec;
use snap_repro::apps::socket::SocketError;
use snap_repro::apps::stream::StreamSpec;
use snap_repro::apps::transport::Backend;
use snap_repro::fleet::{run_mixed_fleet, FleetSpec};
use snap_repro::sim::fault::{FaultEvent, FaultPlan, JitterDist};
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};

/// Deterministic payload for message `idx` of a script.
fn msg_bytes(seed: u64, idx: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((seed as usize + idx * 31 + i) & 0xff) as u8)
        .collect()
}

/// Plays `script` over `backend`: true entries send client→server,
/// false entries server→client. Returns the two received streams.
fn play_script(backend: Backend, seed: u64, script: &[(bool, usize)]) -> (Vec<u8>, Vec<u8>) {
    let mut tb = Testbed::new(TestbedConfig {
        seed: 42,
        ..TestbedConfig::default()
    });
    let a = tb.app(0, "alpha", backend);
    let b = tb.app(1, "beta", backend);
    let client = tb
        .app_connect(0, "alpha", 1, "beta")
        .expect("same-backend endpoints wire");
    let server = b.listener().accept().expect("wire queues the peer");

    let (mut to_server, mut to_client) = (Vec::new(), Vec::new());
    for (idx, &(c2s, len)) in script.iter().enumerate() {
        let bytes = msg_bytes(seed, idx, len);
        if c2s {
            to_server.extend_from_slice(&bytes);
            client.send(&mut tb.sim, &bytes).expect("send queues");
        } else {
            to_client.extend_from_slice(&bytes);
            server.send(&mut tb.sim, &bytes).expect("send queues");
        }
    }

    let mut got_server = vec![0u8; to_server.len()];
    server
        .recv_exact_deadline(tb.as_pump(), &mut got_server, Nanos::from_millis(500))
        .expect("stream drains within budget");
    let mut got_client = vec![0u8; to_client.len()];
    client
        .recv_exact_deadline(tb.as_pump(), &mut got_client, Nanos::from_millis(500))
        .expect("stream drains within budget");

    assert_eq!(got_server, to_server, "{}: c→s bytes", backend.label());
    assert_eq!(got_client, to_client, "{}: s→c bytes", backend.label());
    assert_eq!(
        a.stats().dup_chunks,
        0,
        "{}: clean run dups",
        backend.label()
    );
    assert_eq!(
        b.stats().dup_chunks,
        0,
        "{}: clean run dups",
        backend.label()
    );
    (got_server, got_client)
}

proptest! {
    /// The same randomized byte-stream script arrives in order and
    /// uncorrupted over both backends, and the two backends deliver
    /// byte-identical streams.
    #[test]
    fn byte_stream_identical_over_both_backends(
        script in proptest::collection::vec((any::<bool>(), 1usize..1500), 1..10),
        seed in 0u64..1000,
    ) {
        let tcp = play_script(Backend::Tcp, seed, &script);
        let pony = play_script(Backend::Pony, seed, &script);
        prop_assert_eq!(&tcp.0, &pony.0, "c→s streams diverge across backends");
        prop_assert_eq!(&tcp.1, &pony.1, "s→c streams diverge across backends");
    }

    /// Under a randomized gray fault plan (lossy links, jitter, pause
    /// storms — no crashes), every DAG request completes exactly once:
    /// no request is lost, none is double-completed.
    #[test]
    fn dag_completes_exactly_once_under_gray_faults(
        loss_ppm in 0u64..150_000,
        jitter_us in 0u64..200,
        pause_us in 0u64..300,
    ) {
        let mut tb = Testbed::new(TestbedConfig {
            hosts: 3,
            seed: 7,
            ..TestbedConfig::default()
        });
        let plan = FaultPlan::new()
            .at(
                Nanos::from_micros(200),
                FaultEvent::LinkLossy { from: 0, to: 1, prob: loss_ppm as f64 / 1e6 },
            )
            .at(
                Nanos::from_micros(300),
                FaultEvent::LinkJitter {
                    from: 1,
                    to: 2,
                    dist: JitterDist { median: Nanos::from_micros(jitter_us), sigma: 0.8 },
                },
            )
            .at(
                Nanos::from_micros(400),
                FaultEvent::PauseStorm { host: 2, duration: Nanos::from_micros(pause_us) },
            )
            .at(
                Nanos::from_millis(4),
                FaultEvent::LinkLossy { from: 0, to: 1, prob: 0.0 },
            );
        tb.install_fault_plan(&plan);

        let spec = small_dag();
        let mut dag = tb.dag("gray", &spec, Backend::Pony).expect("spec wires");
        let load = OpenLoop::constant(4_000.0, 20);
        let report = dag
            .run(tb.as_pump(), load, Nanos::from_millis(400))
            .expect("every request completes despite gray faults");

        prop_assert_eq!(report.results.len(), 20);
        let mut rids: Vec<u64> = report.results.iter().map(|r| r.rid).collect();
        rids.sort_unstable();
        rids.dedup();
        prop_assert_eq!(rids.len(), 20, "a request completed twice");
        // The critical-path breakdown telescopes exactly even when the
        // transport leg absorbs retransmits and jitter.
        for r in &report.results {
            prop_assert_eq!(
                (r.queue + r.service + r.transport).as_nanos(),
                r.total().as_nanos(),
                "breakdown must telescope"
            );
        }
    }
}

/// Root fans out to two mid services which both feed a shared leaf —
/// a diamond, exercising fan-out and fan-in.
fn small_dag() -> DagSpec {
    DagSpec {
        services: vec![
            ServiceSpec {
                name: "frontend".into(),
                host: 0,
                time: ServiceTime::Constant(Nanos::from_micros(5)),
                concurrency: 8,
                children: vec![1, 2],
            },
            ServiceSpec {
                name: "mid-a".into(),
                host: 1,
                time: ServiceTime::Exponential { mean_us: 10.0 },
                concurrency: 4,
                children: vec![3],
            },
            ServiceSpec {
                name: "mid-b".into(),
                host: 1,
                time: ServiceTime::Exponential { mean_us: 15.0 },
                concurrency: 4,
                children: vec![3],
            },
            ServiceSpec {
                name: "leaf".into(),
                host: 0,
                time: ServiceTime::LogNormal {
                    median_us: 8.0,
                    sigma: 0.5,
                },
                concurrency: 16,
                children: vec![],
            },
        ],
        request_bytes: 256,
        reply_bytes: 128,
    }
}

/// A deadline receive with nothing inbound burns exactly its virtual
/// timeout on the simulator clock — never wall time.
#[test]
fn recv_deadline_uses_sim_time() {
    let mut tb = Testbed::pair();
    tb.app(0, "alpha", Backend::Pony);
    let b = tb.app(1, "beta", Backend::Pony);
    let client = tb.app_connect(0, "alpha", 1, "beta").expect("wires");
    let _server = b.listener().accept().expect("peer queued");

    let t0 = tb.sim.now();
    let mut buf = [0u8; 16];
    let err = client
        .recv_deadline(tb.as_pump(), &mut buf, Nanos::from_millis(2))
        .expect_err("no data is coming");
    assert_eq!(err, SocketError::TimedOut);
    let waited = tb.sim.now().saturating_sub(t0);
    assert!(
        waited >= Nanos::from_millis(2),
        "returned before the virtual deadline: {waited:?}"
    );
    assert!(
        waited < Nanos::from_millis(2) + Nanos::from_micros(50),
        "overshot the virtual deadline: {waited:?}"
    );
}

/// The identical DagSpec value runs unmodified over both backends, and
/// reruns with the same seed are latency-identical (determinism).
#[test]
fn same_dag_spec_runs_on_both_backends_deterministically() {
    let spec = small_dag();
    let load = OpenLoop::constant(5_000.0, 40);
    let run = |backend: Backend| {
        let mut tb = Testbed::new(TestbedConfig {
            seed: 11,
            ..TestbedConfig::default()
        });
        let mut dag = tb.dag("d", &spec, backend).expect("spec wires");
        dag.run(tb.as_pump(), load, Nanos::from_millis(200))
            .expect("all requests complete")
    };

    let tcp = run(Backend::Tcp);
    let pony = run(Backend::Pony);
    assert_eq!(tcp.results.len(), 40);
    assert_eq!(pony.results.len(), 40);

    let pony2 = run(Backend::Pony);
    assert_eq!(pony.p50, pony2.p50, "same seed must reproduce p50");
    assert_eq!(pony.p99, pony2.p99, "same seed must reproduce p99");
    let tcp2 = run(Backend::Tcp);
    assert_eq!(tcp.p50, tcp2.p50, "same seed must reproduce p50");
    assert_eq!(tcp.p99, tcp2.p99, "same seed must reproduce p99");
}

/// Back-pressure path: a Pony-backed socket under a tiny memory quota
/// sees Busy rejections, retries under the same chunk identity, and
/// still delivers the stream exactly once, in order.
#[test]
fn quota_backpressure_preserves_stream() {
    let mut tb = Testbed::new(TestbedConfig {
        admission: true,
        seed: 3,
        ..TestbedConfig::default()
    });
    let a = tb.app(0, "alpha", Backend::Pony);
    let b = tb.app(1, "beta", Backend::Pony);
    let client = tb.app_connect(0, "alpha", 1, "beta").expect("wires");
    let server = b.listener().accept().expect("peer queued");

    // Squeeze the sender's memory quota so some submissions bounce.
    if let Some(adm) = &tb.hosts[0].admission {
        adm.set_policy(
            "alpha",
            snap_repro::isolation::QuotaPolicy::with_mem(16 * 1024, 24 * 1024),
        );
    }

    let payload = msg_bytes(9, 0, 200 * 1024);
    client.send(&mut tb.sim, &payload).expect("send queues");
    let mut got = vec![0u8; payload.len()];
    server
        .recv_exact_deadline(tb.as_pump(), &mut got, Nanos::from_millis(2_000))
        .expect("stream drains despite Busy back-pressure");
    assert_eq!(got, payload);
    assert_eq!(a.stats().dup_chunks, 0);
    assert_eq!(b.stats().dup_chunks, 0);
}

/// The mixed-fleet scenario: a latency-sensitive DAG, a Zipf-skewed KV
/// cache, and a bulk streamer co-scheduled on three hosts under
/// per-container memory quotas, all driven against one simulator. All
/// three workloads must finish and verify, and the run must be
/// seed-deterministic.
#[test]
fn mixed_fleet_coschedules_dag_kv_and_stream_under_quotas() {
    let run = || {
        let mut tb = Testbed::new(TestbedConfig {
            hosts: 3,
            admission: true,
            seed: 13,
            ..TestbedConfig::default()
        });
        let spec = FleetSpec {
            dag: small_dag(),
            dag_load: OpenLoop::constant(4_000.0, 30),
            kv: KvSpec {
                keys: 64,
                zipf_s: 1.1,
                value_bytes: 128,
                lookup: ServiceTime::Exponential { mean_us: 3.0 },
                rate_per_sec: 6_000.0,
                requests: 40,
            },
            kv_hosts: (2, 1),
            stream: StreamSpec {
                record_bytes: 8 * 1024,
                rate_per_sec: 2_000.0,
                records: 25,
            },
            stream_hosts: (0, 2),
            mem_quota: (256 * 1024, 512 * 1024),
            budget: Nanos::from_millis(500),
        };
        run_mixed_fleet(&mut tb, &spec).expect("fleet completes within budget")
    };

    let report = run();
    assert_eq!(report.dag.results.len(), 30, "every DAG request completed");
    assert_eq!(report.kv.verified, 40, "every GET answered and verified");
    assert_eq!(report.stream.records, 25, "every record delivered");
    assert_eq!(report.stream.corrupt_bytes, 0, "stream bytes verified");
    assert!(
        report.kv.hottest_frac > 0.1,
        "Zipf skew concentrates on the hot key (got {})",
        report.kv.hottest_frac
    );

    let again = run();
    assert_eq!(report.dag.p50, again.dag.p50, "fleet must be deterministic");
    assert_eq!(report.dag.p99, again.dag.p99, "fleet must be deterministic");
    assert_eq!(report.kv.p50, again.kv.p50, "fleet must be deterministic");
}
