//! Gray-failure detection end to end: a [`HealthRig`]'s in-band
//! probers must notice failures that never trip a liveness check — a
//! link that delivers most packets, a PFC pause storm, an engine that
//! is alive but pathologically slow — and quarantine each within
//! bounded sim-time, without ever firing on a healthy rack.

use snap_repro::core::supervisor::SupervisorConfig;
use snap_repro::health::Target;
use snap_repro::health_rig::HealthRigConfig;
use snap_repro::pony::client::PonyCommand;
use snap_repro::sim::fault::{FaultEvent, FaultPlan};
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};

fn rig_cfg() -> HealthRigConfig {
    HealthRigConfig::default()
}

/// A 40%-lossy (but alive) link is quarantined; the healthy reverse
/// direction and the rack's other links are left alone.
#[test]
fn lossy_link_is_quarantined_within_bounded_time() {
    let mut tb = Testbed::new(TestbedConfig {
        hosts: 3,
        ..TestbedConfig::default()
    });
    let rig = tb.health_rig(rig_cfg());
    rig.start(&mut tb.sim);

    let plan = FaultPlan::new().at(
        Nanos::from_millis(10),
        FaultEvent::LinkLossy {
            from: 0,
            to: 1,
            prob: 0.4,
        },
    );
    tb.install_fault_plan(&plan);
    tb.run_ms(60);
    rig.stop();

    let links = rig.quarantined_links();
    assert!(
        links.contains(&(0, 1)),
        "lossy 0->1 link must be quarantined, got {links:?}"
    );
    // RTT probes measure the round trip, so the reverse direction may
    // legitimately fire too (its responses die on the lossy link) —
    // but detection stays specific to the faulted host pair: links
    // involving host 2 are untouched.
    assert!(
        links.iter().all(|l| matches!(l, (0, 1) | (1, 0))),
        "only the faulted pair: {links:?}"
    );
    assert!(rig.quarantined_engines().is_empty());
    // Bounded detection time: fault at 10ms, caught well within run.
    let score = rig
        .score(Target::Link { from: 0, to: 1 }, tb.sim.now())
        .expect("probed");
    assert!(score.loss_ratio > 0.0 || score.phi > 0.0);
}

/// A PFC pause storm on a host's egress stalls its outbound probes;
/// the detector quarantines a link out of the stormed host.
#[test]
fn pause_storm_triggers_quarantine() {
    let mut tb = Testbed::new(TestbedConfig {
        hosts: 3,
        ..TestbedConfig::default()
    });
    let rig = tb.health_rig(rig_cfg());
    rig.start(&mut tb.sim);

    let plan = FaultPlan::new().at(
        Nanos::from_millis(10),
        FaultEvent::PauseStorm {
            host: 1,
            duration: Nanos::from_millis(20),
        },
    );
    tb.install_fault_plan(&plan);
    tb.run_ms(60);
    rig.stop();

    let links = rig.quarantined_links();
    assert!(
        links.iter().any(|&(from, to)| from == 1 || to == 1),
        "a link touching the stormed host must be quarantined: {links:?}"
    );
}

/// An engine slowed 20x under sustained load stays alive (heartbeats,
/// completes ops) — a binary liveness check never fires. The engine
/// probe's dequeue latency balloons, the verdict goes Degraded, and the
/// supervisor proactively rebuilds the engine, which heals it.
#[test]
fn slow_engine_is_quarantined_and_restart_heals_it() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let _b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    let sup = tb.supervise_app(
        0,
        "client",
        SupervisorConfig {
            checkpoint_interval: Nanos::from_millis(1),
            restart_cost: Nanos::from_micros(200),
            ..SupervisorConfig::default()
        },
    );
    let rig = tb.health_rig(rig_cfg());
    tb.health_watch_app(&rig, 0, "client", &sup);
    rig.start(&mut tb.sim);

    let engine = tb.hosts[0].module.engine_for("client").expect("app exists");

    let plan = FaultPlan::new().at(
        Nanos::from_millis(10),
        FaultEvent::EngineSlowdown {
            host: 0,
            engine: engine.0,
            factor: 20.0,
        },
    );
    tb.install_fault_plan(&plan);

    // Sustained streaming load: light for a healthy engine (~9% of a
    // core), saturating at 20x — the slowdown becomes real queueing
    // delay the probe's dequeue latency senses.
    for _ in 0..400 {
        for _ in 0..4 {
            a.submit(
                &mut tb.sim,
                PonyCommand::Send {
                    conn,
                    stream: 0,
                    len: 2000,
                },
            );
        }
        tb.run_us(50);
        a.poll();
        a.take_completions();
    }
    rig.stop();
    sup.stop();
    tb.run_ms(5);

    assert_eq!(
        rig.quarantined_engines(),
        vec![(0, engine.0)],
        "the slowed engine must be quarantined exactly once"
    );
    assert_eq!(sup.report().quarantine_restarts, 1);
    assert!(rig.quarantined_links().is_empty(), "no link false positives");
    // The rebuild healed the slowdown (restart resets the factor).
    assert_eq!(tb.hosts[0].group.slowdown_factor(engine), Some(1.0));
}

/// Negative control: a healthy rack under the same probing cadence and
/// a live workload produces zero quarantines of any kind, and the rig
/// is deterministic — two identical runs agree on every score.
#[test]
fn healthy_rack_shows_zero_false_positives_and_is_deterministic() {
    let run = || {
        let mut tb = Testbed::pair();
        let mut a = tb.pony_app(0, "client", |_| {});
        let _b = tb.pony_app(1, "server", |_| {});
        let conn = tb.connect(0, "client", 1, "server");
        let sup = tb.supervise_app(0, "client", SupervisorConfig::default());
        let rig = tb.health_rig(rig_cfg());
        tb.health_watch_app(&rig, 0, "client", &sup);
        rig.start(&mut tb.sim);
        for _ in 0..400 {
            a.submit(
                &mut tb.sim,
                PonyCommand::Send {
                    conn,
                    stream: 0,
                    len: 1000,
                },
            );
            tb.run_us(100);
            a.poll();
            a.take_completions();
        }
        rig.stop();
        sup.stop();
        tb.run_ms(2);
        let now = tb.sim.now();
        let scores: Vec<String> = [
            Target::Link { from: 0, to: 1 },
            Target::Link { from: 1, to: 0 },
        ]
        .into_iter()
        .filter_map(|t| rig.score(t, now).map(|s| format!("{t:?}:{s:?}")))
        .collect();
        (rig.quarantines(), sup.report().restarts(), scores)
    };
    let (q1, r1, s1) = run();
    let (q2, r2, s2) = run();
    assert_eq!(q1, 0, "healthy rack must see zero quarantines");
    assert_eq!(r1, 0, "healthy rack must see zero restarts");
    assert!(!s1.is_empty(), "links were probed");
    assert_eq!((q1, r1, &s1), (q2, r2, &s2), "rig must be deterministic");
}
