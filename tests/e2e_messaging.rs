//! End-to-end two-sided messaging across the full stack: client
//! library → shared-memory queues → Pony engine → flows → virtual NIC →
//! fabric → remote engine → remote application.

use snap_repro::pony::client::{OpStatus, PonyCommand, PonyCompletion};
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};

fn recv_lens(completions: Vec<PonyCompletion>) -> Vec<u64> {
    completions
        .into_iter()
        .filter_map(|c| match c {
            PonyCompletion::RecvMsg { len, .. } => Some(len),
            _ => None,
        })
        .collect()
}

#[test]
fn bidirectional_messaging() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let ab = tb.connect(0, "a", 1, "b");
    let ba = tb.connect(1, "b", 0, "a");
    a.submit(&mut tb.sim, PonyCommand::Send { conn: ab, stream: 0, len: 128 });
    b.submit(&mut tb.sim, PonyCommand::Send { conn: ba, stream: 0, len: 256 });
    tb.run_ms(5);
    assert_eq!(recv_lens(b.take_completions()), vec![128]);
    assert_eq!(recv_lens(a.take_completions()), vec![256]);
}

#[test]
fn same_conn_carries_both_directions_of_rpc() {
    // Request-response on one connection: both endpoints can send.
    let mut tb = Testbed::pair();
    let mut client = tb.pony_app(0, "client", |_| {});
    let mut server = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    client.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 100 });
    tb.run_ms(2);
    assert_eq!(recv_lens(server.take_completions()), vec![100]);
    // Server replies on the same conn.
    server.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 4000 });
    tb.run_ms(2);
    assert_eq!(recv_lens(client.take_completions()), vec![4000]);
}

#[test]
fn many_messages_all_delivered_exactly_once() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    const N: u64 = 200;
    for _ in 0..N {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 200 });
    }
    tb.run_ms(50);
    let mut msgs: Vec<u64> = b
        .take_completions()
        .into_iter()
        .filter_map(|c| match c {
            PonyCompletion::RecvMsg { msg, .. } => Some(msg),
            _ => None,
        })
        .collect();
    msgs.sort_unstable();
    assert_eq!(msgs, (0..N).collect::<Vec<_>>());
}

#[test]
fn loss_and_reordering_recovered_transparently() {
    let mut tb = Testbed::new(TestbedConfig {
        loss: 0.05,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 64 });
    for _ in 0..20 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 30_000 });
    }
    // Generous budget: the SRTT-based RTO retries conservatively, so
    // repeated losses of the same chunk take a few hundred ms to clear.
    tb.run_ms(3000);
    let lens = recv_lens(b.take_completions());
    assert_eq!(lens.len(), 20, "all 20 large messages delivered under 5% loss");
    assert!(lens.iter().all(|&l| l == 30_000));
}

#[test]
fn small_message_credits_recycle() {
    // More small messages than initial credits (64): the credit pool
    // must recycle as sends complete.
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    const N: usize = 300;
    for _ in 0..N {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 64 });
    }
    tb.run_ms(100);
    assert_eq!(recv_lens(b.take_completions()).len(), N);
    let done = a
        .take_completions()
        .into_iter()
        .filter(|c| matches!(c, PonyCompletion::OpDone { status: OpStatus::Ok, .. }))
        .count();
    assert_eq!(done, N, "every send completed, so credits recycled");
}

#[test]
fn large_sends_blocked_without_buffers_drain_after_post() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    for _ in 0..3 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 500_000 });
    }
    tb.run_ms(20);
    assert!(recv_lens(b.take_completions()).is_empty(), "held by flow control");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 2 });
    tb.run_ms(30);
    assert_eq!(recv_lens(b.take_completions()).len(), 2, "two buffers, two messages");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 1 });
    tb.run_ms(30);
    assert_eq!(recv_lens(b.take_completions()).len(), 1, "third follows the third buffer");
}

#[test]
fn streams_do_not_head_of_line_block_each_other() {
    // A huge message on stream 0 must not delay a tiny message on
    // stream 1 beyond the transmission interleave (§3.3).
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 8 });
    tb.run_ms(1);
    a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 5_000_000 });
    a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 1, len: 100 });
    // Run until the small message shows up; it must arrive long before
    // the 5 MB transfer finishes.
    let mut small_arrival = None;
    for _ in 0..500 {
        tb.run_us(100);
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { stream: 1, .. } = c {
                small_arrival.get_or_insert(tb.sim.now());
            }
        }
        if small_arrival.is_some() {
            break;
        }
    }
    let at = small_arrival.expect("small message arrived");
    // 5MB at ~40Gbps is ~1ms; the small message must beat that handily.
    assert!(
        at < Nanos::from_millis(2),
        "stream-1 message arrived at {at}, head-of-line blocked"
    );
}

#[test]
fn engine_stats_reflect_traffic() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let _b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 100 });
    }
    tb.run_ms(5);
    let id = tb.hosts[0].module.engine_for("a").unwrap();
    let (tx, cmds) = tb.hosts[0].group.with_engine(id, |e| {
        let pe = e
            .as_any()
            .downcast_mut::<snap_repro::pony::PonyEngine>()
            .unwrap();
        (pe.stats().tx_packets, pe.stats().commands)
    });
    assert!(tx >= 10, "at least one packet per message");
    assert_eq!(cmds, 10);
}
