//! One-sided operations end to end (§3.2): remote reads/writes and the
//! custom indirect and scan-and-read operations, including permission
//! enforcement — no server application thread participates anywhere.

use snap_repro::pony::client::{OpStatus, PonyCommand, PonyCompletion};
use snap_repro::shm::region::AccessMode;
use snap_repro::testbed::Testbed;

fn op_result(completions: Vec<PonyCompletion>, op: u64) -> (OpStatus, Vec<u8>) {
    completions
        .into_iter()
        .find_map(|c| match c {
            PonyCompletion::OpDone { op: o, status, data, .. } if o == op => Some((status, data)),
            _ => None,
        })
        .expect("operation completed")
}

struct World {
    tb: Testbed,
    client: snap_repro::pony::PonyClient,
    conn: u64,
}

fn world() -> World {
    let mut tb = Testbed::pair();
    let client = tb.pony_app(0, "initiator", |_| {});
    let _target = tb.pony_app(1, "target", |_| {});
    let conn = tb.connect(0, "initiator", 1, "target");
    World { tb, client, conn }
}

#[test]
fn read_returns_exact_bytes() {
    let mut w = world();
    let region = w.tb.hosts[1]
        .regions
        .register_with("target", (0u8..=255).collect(), AccessMode::ReadOnly);
    let op = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::Read { conn: w.conn, region: region.0, offset: 100, len: 8 },
    );
    w.tb.run_ms(2);
    let (status, data) = op_result(w.client.take_completions(), op);
    assert_eq!(status, OpStatus::Ok);
    assert_eq!(data, (100u8..108).collect::<Vec<_>>());
}

#[test]
fn write_to_readonly_region_is_denied() {
    let mut w = world();
    let region = w.tb.hosts[1]
        .regions
        .register_with("target", vec![9u8; 32], AccessMode::ReadOnly);
    let op = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::Write { conn: w.conn, region: region.0, offset: 0, data: vec![1, 2, 3] },
    );
    w.tb.run_ms(2);
    let (status, _) = op_result(w.client.take_completions(), op);
    assert_eq!(status, OpStatus::RemoteAccessError);
    // Target memory untouched.
    assert_eq!(w.tb.hosts[1].regions.read(region, 0, 3).unwrap(), vec![9, 9, 9]);
}

#[test]
fn unknown_region_is_rejected_not_crashed() {
    let mut w = world();
    let op = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::Read { conn: w.conn, region: 0xDEAD, offset: 0, len: 4 },
    );
    w.tb.run_ms(2);
    let (status, _) = op_result(w.client.take_completions(), op);
    assert_eq!(status, OpStatus::RemoteAccessError);
}

#[test]
fn deregistered_region_becomes_inaccessible() {
    let mut w = world();
    let region = w.tb.hosts[1]
        .regions
        .register_with("target", vec![1u8; 16], AccessMode::ReadOnly);
    let op = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::Read { conn: w.conn, region: region.0, offset: 0, len: 4 },
    );
    w.tb.run_ms(2);
    assert_eq!(op_result(w.client.take_completions(), op).0, OpStatus::Ok);
    // The app revokes the region (e.g. rotating shared memory).
    assert!(w.tb.hosts[1].regions.deregister(region));
    let op2 = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::Read { conn: w.conn, region: region.0, offset: 0, len: 4 },
    );
    w.tb.run_ms(2);
    assert_eq!(
        op_result(w.client.take_completions(), op2).0,
        OpStatus::RemoteAccessError
    );
}

#[test]
fn batched_indirect_read_returns_concatenated_targets() {
    let mut w = world();
    let heap = w.tb.hosts[1]
        .regions
        .register_with("target", (0u8..200).collect(), AccessMode::ReadOnly);
    let mut table = Vec::new();
    for i in 0..16u64 {
        table.extend_from_slice(&(((heap.0) << 32) | (i * 10)).to_le_bytes());
    }
    let table = w.tb.hosts[1]
        .regions
        .register_with("target", table, AccessMode::ReadOnly);
    let op = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::IndirectRead {
            conn: w.conn,
            table: table.0,
            indices: vec![1, 5, 9],
            len: 3,
        },
    );
    w.tb.run_ms(2);
    let (status, data) = op_result(w.client.take_completions(), op);
    assert_eq!(status, OpStatus::Ok);
    assert_eq!(data, vec![10, 11, 12, 50, 51, 52, 90, 91, 92]);
}

#[test]
fn indirect_read_with_bad_table_index_errors() {
    let mut w = world();
    let table = w.tb.hosts[1]
        .regions
        .register_with("target", vec![0u8; 16], AccessMode::ReadOnly); // 2 entries
    let op = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::IndirectRead { conn: w.conn, table: table.0, indices: vec![7], len: 4 },
    );
    w.tb.run_ms(2);
    assert_eq!(
        op_result(w.client.take_completions(), op).0,
        OpStatus::RemoteAccessError
    );
}

#[test]
fn scan_read_finds_key_anywhere_in_region() {
    let mut w = world();
    let heap = w.tb.hosts[1]
        .regions
        .register_with("target", vec![0xCD; 128], AccessMode::ReadOnly);
    let mut scan = Vec::new();
    for k in 0..10u64 {
        scan.extend_from_slice(&(1000 + k).to_le_bytes());
        scan.extend_from_slice(&(((heap.0) << 32) | (k * 4)).to_le_bytes());
    }
    let scan = w.tb.hosts[1]
        .regions
        .register_with("target", scan, AccessMode::ReadOnly);
    let op = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::ScanRead { conn: w.conn, region: scan.0, key: 1009, len: 2 },
    );
    w.tb.run_ms(2);
    let (status, data) = op_result(w.client.take_completions(), op);
    assert_eq!(status, OpStatus::Ok);
    assert_eq!(data, vec![0xCD, 0xCD]);
}

#[test]
fn writes_then_reads_roundtrip_through_remote_memory() {
    let mut w = world();
    let region = w.tb.hosts[1]
        .regions
        .register("target", 64, AccessMode::ReadWrite);
    let wr = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::Write { conn: w.conn, region: region.0, offset: 16, data: vec![42; 8] },
    );
    w.tb.run_ms(2);
    assert_eq!(op_result(w.client.take_completions(), wr).0, OpStatus::Ok);
    let rd = w.client.submit(
        &mut w.tb.sim,
        PonyCommand::Read { conn: w.conn, region: region.0, offset: 14, len: 12 },
    );
    w.tb.run_ms(2);
    let (_, data) = op_result(w.client.take_completions(), rd);
    assert_eq!(data, [vec![0, 0], vec![42; 8], vec![0, 0]].concat());
}

#[test]
fn onesided_ops_survive_lossy_fabric() {
    let mut w = world();
    w.tb.fabric.set_loss_prob(0.08);
    let region = w.tb.hosts[1]
        .regions
        .register_with("target", (0u8..64).collect(), AccessMode::ReadOnly);
    let mut ops = Vec::new();
    for i in 0..20 {
        ops.push(w.client.submit(
            &mut w.tb.sim,
            PonyCommand::Read { conn: w.conn, region: region.0, offset: i as u64, len: 4 },
        ));
    }
    w.tb.run_ms(500);
    let completions = w.client.take_completions();
    for (i, op) in ops.into_iter().enumerate() {
        let (status, data) = completions
            .iter()
            .find_map(|c| match c {
                PonyCompletion::OpDone { op: o, status, data, .. } if *o == op => {
                    Some((*status, data.clone()))
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("op {i} lost"));
        assert_eq!(status, OpStatus::Ok);
        assert_eq!(data[0] as usize, i);
    }
}

#[test]
fn server_engine_counts_onesided_service() {
    let mut w = world();
    let region = w.tb.hosts[1]
        .regions
        .register("target", 32, AccessMode::ReadOnly);
    for _ in 0..5 {
        w.client.submit(
            &mut w.tb.sim,
            PonyCommand::Read { conn: w.conn, region: region.0, offset: 0, len: 4 },
        );
    }
    w.tb.run_ms(5);
    let id = w.tb.hosts[1].module.engine_for("target").unwrap();
    let served = w.tb.hosts[1].group.with_engine(id, |e| {
        e.as_any()
            .downcast_mut::<snap_repro::pony::PonyEngine>()
            .unwrap()
            .stats()
            .onesided_served
    });
    assert_eq!(served, 5);
}
