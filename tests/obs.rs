//! Flight-recorder integration (PR 10): reset-aware sampling across
//! crash/restart and live-upgrade churn, byte-identical determinism,
//! and the per-core CPU attribution invariant under property-driven
//! workloads.

use proptest::prelude::*;

use snap_repro::core::group::SchedulingMode;
use snap_repro::core::supervisor::SupervisorConfig;
use snap_repro::core::upgrade::UpgradeOrchestrator;
use snap_repro::obs::{FlightRecorder, PointValue, RecorderConfig};
use snap_repro::pony::client::{PonyCommand, PonyCompletion};
use snap_repro::sim::fault::{FaultEvent, FaultPlan};
use snap_repro::sim::Nanos;
use snap_repro::telemetry::StatsConfig;
use snap_repro::testbed::{Testbed, TestbedConfig};

/// Sums a rate series and checks its timestamps strictly increase.
fn rate_series_sum(rec: &FlightRecorder, name: &str) -> u64 {
    let points = rec.series(name);
    assert!(!points.is_empty(), "series {name} has points");
    let mut last = None;
    let mut sum = 0u64;
    for (at, v) in points {
        if let Some(prev) = last {
            // A manual sample may share the last periodic tick's
            // timestamp; time must never run backwards though.
            assert!(at >= prev, "series {name} timestamps never regress");
        }
        last = Some(at);
        match v {
            PointValue::Rate(r) => sum += r,
            other => panic!("series {name} is not a rate: {other:?}"),
        }
    }
    sum
}

/// Crash/restart plus a live upgrade mid-run, recorder attached to the
/// stats registry the whole time. The recorder's windows must tile the
/// run exactly: the sum of per-window deltas equals the final
/// cumulative counter — nothing double-counted across the restart,
/// nothing lost across the upgrade.
fn churn_run() -> (String, u64, u64) {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });

    let sup = tb.supervise_app(
        0,
        "client",
        SupervisorConfig {
            checkpoint_interval: Nanos::from_millis(1),
            ..SupervisorConfig::default()
        },
    );
    let stats = tb.stats_module(StatsConfig {
        poll_period: Nanos::from_micros(500),
    });
    stats.start(&mut tb.sim);
    let rec = FlightRecorder::new(
        RecorderConfig {
            cadence: Nanos::from_millis(1),
            capacity: 4096,
        },
        stats.registry(),
    );
    rec.start(&mut tb.sim);

    let plan = FaultPlan::new().at(
        Nanos::from_millis(30),
        FaultEvent::EngineCrash { host: 0, engine: 0 },
    );
    tb.install_fault_plan(&plan);

    let mut got = Vec::new();
    let drain = |b: &mut snap_repro::pony::PonyClient, got: &mut Vec<u64>| {
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { msg, .. } = c {
                got.push(msg);
            }
        }
    };
    // Phase A: before the crash (quiesces by t=30ms).
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 8_000 });
        tb.run_ms(2);
        drain(&mut b, &mut got);
    }
    // Phase B: ride out the restart blackout, then more traffic.
    while tb.sim.now() < Nanos::from_millis(80) {
        tb.run_ms(5);
    }
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 8_000 });
        tb.run_ms(2);
        drain(&mut b, &mut got);
    }
    // Phase C: live-upgrade the server engine under load.
    let id = tb.hosts[1].module.engine_for("server").unwrap();
    let factory = tb.hosts[1].module.upgrade_factory("server").unwrap();
    let mut orch = UpgradeOrchestrator::new();
    orch.add_engine_fallible(tb.hosts[1].group.clone(), id, 3, factory);
    let report = orch.start(&mut tb.sim);
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 8_000 });
        tb.run_ms(10);
        drain(&mut b, &mut got);
    }
    tb.run_ms(500);
    drain(&mut b, &mut got);
    stats.stop();
    rec.stop();
    // One final sample so the last partial window is recorded too.
    stats.poll_once(&mut tb.sim);
    rec.sample_once(&mut tb.sim);

    assert!(report.borrow().is_some(), "upgrade completed");
    assert_eq!(sup.report().crash_restarts, 1, "the crash actually restarted");
    got.sort_unstable();
    got.dedup();
    assert_eq!(got, (0..30).collect::<Vec<u64>>(), "exactly-once delivery");

    let final_tx = stats
        .snapshot(tb.sim.now())
        .counter("engine.h0.client.tx_packets")
        .expect("stats watched the client engine");
    let recorded_tx = rate_series_sum(&rec, "engine.h0.client.tx_packets");
    (rec.to_json(), recorded_tx, final_tx)
}

#[test]
fn recorder_windows_tile_exactly_across_restart_and_upgrade() {
    let (_, recorded_tx, final_tx) = churn_run();
    assert!(final_tx > 0, "workload generated traffic");
    assert_eq!(
        recorded_tx, final_tx,
        "recorder windows must sum to the cumulative counter: \
         no double-counting across the restart, no loss across the upgrade"
    );
}

#[test]
fn same_seed_gives_byte_identical_recorder_output() {
    let (json_a, _, _) = churn_run();
    let (json_b, _, _) = churn_run();
    assert_eq!(json_a, json_b, "same seed must replay to identical bytes");
}

/// Runs a short streaming workload in the given mode and returns the
/// testbed with its recorder after a final sample.
fn attribution_run(mode: SchedulingMode, seed: u64, msgs: usize, len: u64) -> (Testbed, FlightRecorder) {
    let mut tb = Testbed::new(TestbedConfig {
        seed,
        cores_per_host: 4,
        mode,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "src", |_| {});
    let mut b = tb.pony_app(1, "sink", |_| {});
    let conn = tb.connect(0, "src", 1, "sink");
    let rec = tb.flight_recorder(RecorderConfig {
        cadence: Nanos::from_micros(500),
        ..RecorderConfig::default()
    });
    rec.start(&mut tb.sim);
    for _ in 0..msgs {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len });
        tb.run_us(100);
        for _ in b.take_completions() {}
        for _ in a.take_completions() {}
    }
    tb.run_ms(2);
    rec.stop();
    rec.sample_once(&mut tb.sim);
    (tb, rec)
}

proptest! {
    /// The published per-core split tiles the group's CPU ledger in
    /// every scheduling mode, for arbitrary workload shapes: every
    /// nanosecond the group consumed lands on exactly one core, and
    /// busy + spin + wake + idle accounts for each core's entire
    /// elapsed virtual time.
    #[test]
    fn per_core_attribution_sums_to_total_sim_cpu(
        seed in 1u64..1000,
        mode_pick in 0usize..3,
        msgs in 1usize..24,
        len in 64u64..16_384,
    ) {
        let mode = match mode_pick {
            0 => SchedulingMode::Dedicated { cores: vec![0, 1] },
            1 => SchedulingMode::Spreading,
            _ => SchedulingMode::Compacting {
                slo: Nanos::from_micros(5),
                rebalance_poll: Nanos::from_micros(10),
                idle_block: Nanos::from_micros(100),
            },
        };
        let (tb, rec) = attribution_run(mode, seed, msgs, len);
        let now = tb.sim.now();
        let snap = rec.registry().snapshot(now);
        for (h, host) in tb.hosts.iter().enumerate() {
            let total = host.group.cpu(now);
            let mut split_sum = 0u64;
            let mut elapsed_sum = 0u64;
            let mut cores = 0u64;
            for name in snap.names_under(&format!("cpu.h{h}.core")) {
                let v = snap.counter(name).unwrap_or(0);
                if name.ends_with(".busy_ns")
                    || name.ends_with(".spin_ns")
                    || name.ends_with(".wake_ns")
                {
                    split_sum += v;
                    elapsed_sum += v;
                } else if name.ends_with(".idle_ns") {
                    elapsed_sum += v;
                    cores += 1;
                }
            }
            prop_assert_eq!(
                split_sum,
                total.total().as_nanos(),
                "host {}: per-core busy/spin/wake must sum to the group total",
                h
            );
            prop_assert_eq!(
                elapsed_sum,
                cores * now.as_nanos(),
                "host {}: busy+spin+wake+idle must tile every core's elapsed time",
                h
            );
            let mut engine_sum = 0u64;
            for name in snap.names_under(&format!("cpu.h{h}.engine.")) {
                engine_sum += snap.counter(name).unwrap_or(0);
            }
            prop_assert_eq!(engine_sum, total.engine.as_nanos());
        }
    }
}
