//! Multi-rack topology, end to end: the degenerate one-rack Clos is
//! pinned byte-identical to the legacy single-switch fabric, cross-rack
//! runs are deterministic under rerun, and randomized topology-aware
//! fault plans (trunk failures, leaf brownouts, gray faults) preserve
//! exactly-once in-order delivery across the spine layer.

use proptest::prelude::*;

use snap_repro::nic::fabric::SwitchId;
use snap_repro::pony::client::{PonyCommand, PonyCompletion};
use snap_repro::sim::fault::{FaultEvent, FaultPlan};
use snap_repro::sim::Nanos;
use snap_repro::testbed::{Testbed, TestbedConfig};
use snap_repro::topo::ClosSpec;

/// Drains `client` completions, appending `(virtual ns, msg id)` for
/// every received message.
fn recv_stamped(
    tb: &Testbed,
    client: &mut snap_repro::pony::PonyClient,
    out: &mut Vec<(u64, u64)>,
) {
    let now = tb.sim.now().as_nanos();
    for c in client.take_completions() {
        if let PonyCompletion::RecvMsg { msg, .. } = c {
            out.push((now, msg));
        }
    }
}

/// Runs a fixed src→sink echo script on a testbed with the given
/// topology and returns the full receive timeline plus the fabric
/// counters that summarize every modeled decision (delivery order,
/// loss draws, switch queueing).
fn echo_timeline(
    topology: Option<ClosSpec>,
    hosts: usize,
    seed: u64,
    loss: f64,
    msgs: u64,
) -> (Vec<(u64, u64)>, u64, u64, u64) {
    let mut tb = Testbed::new(TestbedConfig {
        hosts,
        seed,
        loss,
        topology,
        ..TestbedConfig::default()
    });
    let mut a = tb.pony_app(0, "src", |_| {});
    let mut b = tb.pony_app(hosts - 1, "sink", |_| {});
    let conn = tb.connect(0, "src", hosts - 1, "sink");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });

    let mut got = Vec::new();
    for _ in 0..msgs {
        a.submit(
            &mut tb.sim,
            PonyCommand::Send {
                conn,
                stream: 0,
                len: 8_000,
            },
        );
        tb.run_us(100);
        recv_stamped(&tb, &mut b, &mut got);
    }
    // Drain retransmissions (loss may delay the tail).
    let deadline = tb.sim.now() + Nanos::from_millis(20);
    while (got.len() as u64) < msgs && tb.sim.now() < deadline {
        tb.run_us(200);
        recv_stamped(&tb, &mut b, &mut got);
    }
    let stats = tb.fabric.stats();
    (got, stats.delivered, stats.random_drops, stats.switch_drops)
}

proptest! {
    /// The degenerate instance is not "close": a one-rack Clos — even
    /// with an (unused) spine layer configured — produces the exact
    /// receive timeline and fabric counters of the legacy
    /// single-switch fabric, message for message, nanosecond for
    /// nanosecond, across seeds and loss rates.
    #[test]
    fn one_rack_clos_is_byte_identical_to_legacy_fabric(
        hosts in 2usize..4,
        seed in 0u64..200,
        loss_pm in 0u64..80,
    ) {
        let loss = loss_pm as f64 / 1000.0;
        let legacy = echo_timeline(None, hosts, seed, loss, 8);
        let degenerate = echo_timeline(
            Some(ClosSpec::clos(1, hosts as u32, 2)),
            hosts,
            seed,
            loss,
            8,
        );
        prop_assert_eq!(&legacy, &degenerate, "degenerate topology diverged");
    }
}

/// Builds the 2-rack, 2-spine testbed (hosts 0-1 in rack 0, 2-3 in
/// rack 1) with a custom seed.
fn two_rack_testbed(seed: u64) -> Testbed {
    Testbed::new(TestbedConfig {
        hosts: 4,
        seed,
        topology: Some(ClosSpec::clos(2, 2, 2)),
        ..TestbedConfig::default()
    })
}

/// Cross-rack runs replay bit-identically: same seed, same spec, same
/// receive timeline — and the traffic demonstrably crossed the spine
/// layer.
#[test]
fn cross_rack_run_is_deterministic_under_rerun() {
    let run = || {
        let mut tb = two_rack_testbed(77);
        let mut a = tb.pony_app(0, "src", |_| {});
        let mut b = tb.pony_app(2, "sink", |_| {});
        let conn = tb.connect(0, "src", 2, "sink");
        b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });
        let mut got = Vec::new();
        for _ in 0..12 {
            a.submit(
                &mut tb.sim,
                PonyCommand::Send {
                    conn,
                    stream: 0,
                    len: 4_000,
                },
            );
            tb.run_us(120);
            recv_stamped(&tb, &mut b, &mut got);
        }
        tb.run_ms(5);
        recv_stamped(&tb, &mut b, &mut got);
        let trunk_forwarded: u64 = tb
            .fabric
            .trunks()
            .iter()
            .map(|(_, s)| s.forwarded)
            .sum();
        (got, trunk_forwarded, tb.fabric.stats().delivered)
    };
    let (got1, fwd1, del1) = run();
    let (got2, fwd2, del2) = run();
    assert!(!got1.is_empty(), "messages arrived");
    assert!(fwd1 > 0, "cross-rack traffic rode the trunks");
    assert_eq!(got1, got2, "rerun produced a different timeline");
    assert_eq!((fwd1, del1), (fwd2, del2), "rerun produced different counters");
}

/// The pseudo-host trace ids of a multi-rack topology are stamped per
/// switch hop: a cross-rack packet's trace shows three distinct fabric
/// stamps (src leaf, spine, dst leaf).
#[test]
fn cross_rack_packets_traverse_three_switches() {
    let mut tb = two_rack_testbed(5);
    let topo = tb.fabric.topology();
    assert_eq!(topo.hop_count(0, 2), 3);
    assert_eq!(topo.hop_count(0, 1), 1);
    // Distinct trace hosts per switch (stable attribution targets).
    let l0 = topo.trace_host(SwitchId::Leaf(0));
    let l1 = topo.trace_host(SwitchId::Leaf(1));
    let s0 = topo.trace_host(SwitchId::Spine(0));
    let s1 = topo.trace_host(SwitchId::Spine(1));
    assert_eq!(
        [l0, l1, s0, s1].iter().collect::<std::collections::HashSet<_>>().len(),
        4
    );
    // And the fabric actually is the one the testbed advertised.
    let mut a = tb.pony_app(0, "src", |_| {});
    let _b = tb.pony_app(2, "sink", |_| {});
    let conn = tb.connect(0, "src", 2, "sink");
    a.submit(
        &mut tb.sim,
        PonyCommand::Send {
            conn,
            stream: 0,
            len: 2_000,
        },
    );
    tb.run_ms(2);
    let up: u64 = tb
        .fabric
        .trunks()
        .iter()
        .filter(|((from, _), _)| matches!(from, SwitchId::Leaf(_)))
        .map(|(_, s)| s.forwarded)
        .sum();
    let down: u64 = tb
        .fabric
        .trunks()
        .iter()
        .filter(|((from, _), _)| matches!(from, SwitchId::Spine(_)))
        .map(|(_, s)| s.forwarded)
        .sum();
    assert!(up > 0 && down > 0, "both trunk tiers carried the flow");
}

proptest! {
    /// Randomized topology-aware fault plans — trunk failures, leaf
    /// brownouts, lossy links, jitter, pause storms — on a 2x2x2 Clos:
    /// every cross-rack message still arrives exactly once, in order.
    /// Engine crashes are filtered out (crash recovery is the
    /// supervision suite's concern; the fabric arms are under test
    /// here).
    #[test]
    fn randomized_topo_plans_preserve_exactly_once(plan_seed in 0u64..150) {
        let raw = FaultPlan::randomized_topo(
            plan_seed,
            Nanos::from_millis(10),
            4, // hosts
            1, // engines per host
            8, // fault arms
            2, // racks
            2, // spines
        );
        let mut plan = FaultPlan::new();
        for (at, ev) in raw.entries() {
            if matches!(ev, FaultEvent::EngineCrash { .. }) {
                continue;
            }
            plan = plan.at(*at, ev.clone());
        }

        let mut tb = two_rack_testbed(plan_seed ^ 0x7070);
        let mut a = tb.pony_app(0, "src", |_| {});
        let mut b = tb.pony_app(2, "sink", |_| {});
        let conn = tb.connect(0, "src", 2, "sink");
        b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });
        tb.install_fault_plan(&plan);

        const MSGS: u64 = 20;
        let mut got = Vec::new();
        for _ in 0..MSGS {
            a.submit(
                &mut tb.sim,
                PonyCommand::Send {
                    conn,
                    stream: 0,
                    len: 1_500,
                },
            );
            tb.run_us(400);
            recv_stamped(&tb, &mut b, &mut got);
        }
        // All trunk failures and brownouts heal within the plan
        // horizon; give retransmission room to finish after it.
        let deadline = tb.sim.now() + Nanos::from_millis(200);
        while (got.len() as u64) < MSGS && tb.sim.now() < deadline {
            tb.run_ms(2);
            recv_stamped(&tb, &mut b, &mut got);
        }

        let msgs: Vec<u64> = got.iter().map(|&(_, m)| m).collect();
        prop_assert_eq!(
            msgs,
            (0..MSGS).collect::<Vec<u64>>(),
            "exactly once, in order, under plan seed {}",
            plan_seed
        );
    }
}

/// Paper-scale smoke test: the §5.2 deployment shape (7 racks x 6
/// hosts, 3 spines = 42 hosts) carries one cross-rack message per rack
/// pair and replays deterministically.
#[test]
fn forty_two_host_clos_carries_cross_rack_traffic_deterministically() {
    let run = || {
        let mut tb = Testbed::clos(7, 6, 3);
        // One sender per rack, each to the next rack's sink (hosts 0,
        // 6, 12, ... are rack-first hosts).
        let mut senders = Vec::new();
        let mut sinks = Vec::new();
        for r in 0..7usize {
            let src = r * 6;
            let dst = ((r + 1) % 7) * 6;
            let a = tb.pony_app(src, &format!("src{r}"), |_| {});
            let mut b = tb.pony_app(dst, &format!("sink{r}"), |_| {});
            let conn = tb.connect(src, &format!("src{r}"), dst, &format!("sink{r}"));
            b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 32 });
            senders.push((a, conn));
            sinks.push(b);
        }
        for (a, conn) in &mut senders {
            a.submit(
                &mut tb.sim,
                PonyCommand::Send {
                    conn: *conn,
                    stream: 0,
                    len: 4_000,
                },
            );
        }
        tb.run_ms(5);
        let mut got = Vec::new();
        for b in &mut sinks {
            recv_stamped(&tb, b, &mut got);
        }
        let trunk_forwarded: u64 = tb.fabric.trunks().iter().map(|(_, s)| s.forwarded).sum();
        (got.len(), trunk_forwarded, tb.fabric.stats().delivered)
    };
    let one = run();
    let two = run();
    assert_eq!(one.0, 7, "every rack's message arrived");
    assert!(one.1 > 0, "traffic crossed the spine layer");
    assert_eq!(one, two, "42-host run diverged under rerun");
}
