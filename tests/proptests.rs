//! Property-based tests over the core data structures and protocol
//! invariants, per the DESIGN.md testing strategy.

use proptest::prelude::*;

use snap_repro::isolation::{AdmissionController, QuotaPolicy};
use snap_repro::nic::crc::{crc32c, crc32c_append};
use snap_repro::shm::account::CpuAccountant;
use snap_repro::pony::flow::{Accept, Flow};
use snap_repro::pony::timely::{Timely, TimelyConfig};
use snap_repro::pony::wire::{OpFrame, PonyPacket};
use snap_repro::shm::account::MemoryAccountant;
use snap_repro::shm::pool::BufferPool;
use snap_repro::shm::spsc::SpscRing;
use snap_repro::sim::codec::{Reader, Writer};
use snap_repro::sim::{Histogram, Nanos};

proptest! {
    /// The SPSC ring behaves exactly like a bounded FIFO queue.
    #[test]
    fn spsc_ring_matches_model(
        capacity in 1usize..64,
        ops in proptest::collection::vec(proptest::option::of(0u64..1000), 1..200)
    ) {
        let (p, c) = SpscRing::with_capacity::<u64>(capacity);
        let real_cap = capacity.max(2).next_power_of_two();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let pushed = p.push(v).is_ok();
                    let model_pushed = model.len() < real_cap;
                    prop_assert_eq!(pushed, model_pushed, "push acceptance diverged");
                    if model_pushed {
                        model.push_back(v);
                    }
                }
                None => {
                    prop_assert_eq!(c.pop(), model.pop_front(), "pop diverged");
                }
            }
            prop_assert_eq!(c.len(), model.len());
        }
        // Drain: order fully preserved.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(c.pop(), Some(expected));
        }
        prop_assert_eq!(c.pop(), None);
    }

    /// The buffer pool never double-allocates a slot and never loses
    /// one.
    #[test]
    fn buffer_pool_slots_are_exclusive(
        count in 1usize..32,
        ops in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        let pool = BufferPool::new(count, 16, &MemoryAccountant::new(), "prop");
        let mut held = Vec::new();
        for alloc in ops {
            if alloc {
                if let Some(buf) = pool.alloc() {
                    prop_assert!(
                        held.iter().all(|b: &snap_repro::shm::pool::PooledBuf| b.index() != buf.index()),
                        "slot {} handed out twice", buf.index()
                    );
                    held.push(buf);
                }
            } else {
                held.pop();
            }
            prop_assert_eq!(held.len() + pool.available(), count);
        }
    }

    /// CRC32C streaming equals one-shot for every split point.
    #[test]
    fn crc32c_append_equals_whole(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let whole = crc32c(&data);
        for split in 0..=data.len() {
            let (a, b) = data.split_at(split);
            prop_assert_eq!(crc32c_append(crc32c(a), b), whole);
        }
    }

    /// Wire packets decode back to themselves for arbitrary field
    /// values.
    #[test]
    fn wire_roundtrip(
        flow in any::<u64>(),
        seq in any::<u64>(),
        cum in any::<u64>(),
        conn in any::<u64>(),
        stream in any::<u32>(),
        msg in any::<u64>(),
        offset in any::<u64>(),
        total in any::<u64>(),
        len in any::<u32>(),
        sacks in proptest::collection::vec(any::<u64>(), 0..16),
        trace in proptest::option::of((any::<u64>(), any::<u32>(), any::<bool>())),
    ) {
        // Trace contexts ride the v6 header; v5 has no field for them.
        let trace = trace.map(|(trace_id, parent_span, sampled)| {
            snap_repro::sim::trace::TraceContext { trace_id, parent_span, sampled }
        });
        let pkt = PonyPacket {
            version: if trace.is_some() { 6 } else { 5 },
            flow,
            seq,
            cum_ack: cum,
            sacks,
            trace,
            frame: OpFrame::MsgChunk { conn, stream, msg, offset, total, len },
        };
        prop_assert_eq!(PonyPacket::decode(&pkt.encode()).unwrap(), pkt);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn wire_decode_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = PonyPacket::decode(&garbage);
    }

    /// The codec reader rejects or exactly reproduces; never panics.
    #[test]
    fn codec_roundtrip(vals in proptest::collection::vec(any::<u64>(), 0..50)) {
        let mut w = Writer::new();
        for v in &vals {
            w.u64(*v);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for v in &vals {
            prop_assert_eq!(r.u64().unwrap(), *v);
        }
        prop_assert!(r.is_exhausted());
    }

    /// Reliable-flow invariant: under ANY pattern of packet loss and
    /// reordering, every enqueued frame is delivered to the receiver's
    /// upper layer at least once and duplicates are bounded by the
    /// retransmission count.
    #[test]
    fn flow_delivers_everything_under_loss(
        nframes in 1usize..30,
        drop_pattern in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut tx = Flow::new(1, 5, TimelyConfig::default());
        let mut rx = Flow::new(1, 5, TimelyConfig::default());
        for i in 0..nframes {
            tx.enqueue(
                OpFrame::MsgChunk {
                    conn: 1,
                    stream: 0,
                    msg: i as u64,
                    offset: 0,
                    total: 10,
                    len: 10,
                },
                Nanos::ZERO,
            );
        }
        let mut delivered = std::collections::HashSet::new();
        let mut drops = drop_pattern.into_iter();
        let mut now = Nanos::ZERO;
        // Drive for bounded virtual time: produce, maybe drop, deliver,
        // ack back, check RTOs.
        for _round in 0..2000 {
            now += Nanos::from_micros(50);
            while let Some(pkt) = tx.produce(now) {
                let dropped = drops.next().unwrap_or(false);
                if dropped {
                    continue;
                }
                if let (Accept::Deliver(OpFrame::MsgChunk { msg, .. }), _) =
                    rx.on_packet_tracked(&pkt, now)
                {
                    delivered.insert(msg);
                }
            }
            // Receiver acks (acks can also be dropped).
            while let Some(ack) = rx.produce(now) {
                if drops.next().unwrap_or(false) {
                    continue;
                }
                tx.on_packet(&ack, now);
            }
            tx.check_rto(now);
            if delivered.len() == nframes && tx.inflight() == 0 && tx.pending_tx() == 0 {
                break;
            }
        }
        prop_assert_eq!(delivered.len(), nframes, "not all frames delivered");
    }

    /// Timely's rate stays within its configured bounds for any RTT
    /// sample sequence.
    #[test]
    fn timely_rate_bounded(rtts in proptest::collection::vec(1_000u64..10_000_000, 1..200)) {
        let cfg = TimelyConfig::default();
        let (min, max) = (cfg.min_rate, cfg.max_rate);
        let mut t = Timely::new(cfg);
        for rtt in rtts {
            t.on_rtt_sample(Nanos(rtt));
            prop_assert!(t.rate() >= min && t.rate() <= max);
        }
    }

    /// Histogram quantiles are monotone and bracketed by min/max for
    /// arbitrary data.
    #[test]
    fn histogram_quantiles_sane(values in proptest::collection::vec(any::<u32>(), 1..300)) {
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v as u64);
        }
        let mut last = 0u64;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            prop_assert!(q >= last, "quantile not monotone");
            prop_assert!(q >= h.min() && q <= h.max());
            last = q;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Flow upgrade serialization round-trips: a restored flow
    /// retransmits everything unacked and continues the sequence space
    /// without collision.
    #[test]
    fn flow_snapshot_roundtrip(
        nsend in 0usize..20,
        nproduce in 0usize..20,
    ) {
        let mut f = Flow::new(9, 4, TimelyConfig::default());
        for i in 0..nsend {
            f.enqueue(
                OpFrame::MsgChunk {
                    conn: 2,
                    stream: 1,
                    msg: i as u64,
                    offset: 0,
                    total: 5,
                    len: 5,
                },
                Nanos::ZERO,
            );
        }
        let mut produced = 0;
        let mut t = Nanos::ZERO;
        for _ in 0..nproduce.min(nsend) {
            t += Nanos::from_millis(1);
            if f.produce(t).is_some() {
                produced += 1;
            }
        }
        let restored = Flow::deserialize(&f.serialize(), TimelyConfig::default(), t).expect("well-formed snapshot restores");
        // Everything unacked (all produced) + queued is pending again.
        prop_assert_eq!(restored.pending_tx(), nsend);
        prop_assert_eq!(restored.id, 9);
        prop_assert_eq!(restored.version, 4);
        let _ = produced;
    }

    /// Quota invariant: under arbitrary interleavings of charges,
    /// releases, policy resizes and pressure squeezes across several
    /// containers, an admitted charge NEVER pushes usage past the
    /// container's effective hard limit at that moment, the
    /// controller's usage always matches an exact model, and matched
    /// charge/release traffic never trips the accounting-error counter.
    #[test]
    fn admission_never_exceeds_quota(
        ops in proptest::collection::vec(
            (0u8..4, 0usize..3, 1u64..100_000, 0u64..100),
            1..300
        )
    ) {
        let adm = AdmissionController::new(
            snap_repro::shm::account::MemoryAccountant::new(),
            CpuAccountant::new(),
        );
        let names = ["a", "b", "c"];
        // Model state per container: usage, (soft, hard), squeeze.
        let mut usage = [0u64; 3];
        let mut policy = [(u64::MAX, u64::MAX); 3];
        let mut squeeze = [0.0f64; 3];
        // Mirror of the crate's `effective` clamp.
        let eff = |limit: u64, sq: f64| -> u64 {
            if limit == u64::MAX || sq <= 0.0 {
                limit
            } else {
                (limit as f64 * (1.0 - sq.clamp(0.0, 1.0))) as u64
            }
        };
        for (kind, c, bytes, pct) in ops {
            let name = names[c];
            match kind {
                0 => {
                    let admitted = adm.try_charge(name, bytes).is_ok();
                    let hard = eff(policy[c].1, squeeze[c]);
                    if admitted {
                        usage[c] += bytes;
                        prop_assert!(
                            usage[c] <= hard,
                            "admitted past the effective hard limit: {} > {}",
                            usage[c],
                            hard
                        );
                    } else {
                        // A refusal must have been justified.
                        prop_assert!(
                            usage[c].checked_add(bytes).map(|n| n > hard).unwrap_or(true),
                            "refused a charge that fit: {} + {} <= {}",
                            usage[c],
                            bytes,
                            hard
                        );
                    }
                }
                1 => {
                    // Only release what the model knows was charged, so
                    // the accountant never sees an unmatched release.
                    let r = bytes.min(usage[c]);
                    if r > 0 {
                        adm.release(name, r);
                        usage[c] -= r;
                    }
                }
                2 => {
                    let hard = bytes.saturating_mul(2);
                    adm.set_policy(name, QuotaPolicy::with_mem(bytes, hard));
                    policy[c] = (bytes, hard);
                }
                _ => {
                    let f = pct as f64 / 100.0;
                    adm.apply_pressure(name, f);
                    squeeze[c] = f.clamp(0.0, 1.0);
                }
            }
            prop_assert_eq!(adm.usage(name), usage[c], "usage diverged from model");
        }
        prop_assert_eq!(adm.accounting_errors(), 0);
    }
}
