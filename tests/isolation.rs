//! Isolation end to end (§2.5): per-container memory quotas enforced on
//! the Pony datapath, memory-pressure faults squeezing those quotas
//! mid-run, and an engine crash in the middle of it all — while the
//! transport keeps its exactly-once contract. Back-pressure (`Busy`)
//! and best-effort shedding (`Shed`) are the only ways work is refused;
//! nothing is silently dropped.

use std::collections::HashMap;

use snap_repro::core::supervisor::SupervisorConfig;
use snap_repro::isolation::{PressureState, QuotaPolicy};
use snap_repro::nic::packet::QosClass;
use snap_repro::pony::client::{OpStatus, PonyCommand, PonyCompletion};
use snap_repro::pony::PonyClient;
use snap_repro::sim::fault::{FaultEvent, FaultPlan};
use snap_repro::sim::Nanos;
use snap_repro::telemetry::{StatsConfig, StatsModule};
use snap_repro::testbed::{Testbed, TestbedConfig};

const MSG: u64 = 20_000;

fn admission_pair() -> Testbed {
    Testbed::new(TestbedConfig {
        admission: true,
        ..TestbedConfig::default()
    })
}

/// Drains a client's completions into per-op status and received-message
/// maps.
fn pump(
    client: &mut PonyClient,
    done: &mut HashMap<u64, OpStatus>,
    recvd: &mut Vec<(u32, u64)>,
) {
    for c in client.take_completions() {
        match c {
            PonyCompletion::OpDone { op, status, .. } => {
                done.insert(op, status);
            }
            PonyCompletion::RecvMsg { stream, msg, .. } => recvd.push((stream, msg)),
        }
    }
}

/// Submits one transport send and retries on `Busy` until it completes
/// `Ok`; panics on any status the transport class must never see.
/// Returns how many `Busy` refusals were absorbed.
#[allow(clippy::too_many_arguments)]
fn send_transport_retrying(
    tb: &mut Testbed,
    a: &mut PonyClient,
    conn: u64,
    done: &mut HashMap<u64, OpStatus>,
    recvd: &mut Vec<(u32, u64)>,
) -> u64 {
    let mut busy = 0;
    loop {
        let op = a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: MSG });
        let mut waited = 0;
        while !done.contains_key(&op) && waited < 600 {
            tb.run_ms(1);
            pump(a, done, recvd);
            waited += 1;
        }
        match done.get(&op) {
            Some(OpStatus::Ok) => return busy,
            Some(OpStatus::Busy) => {
                // Back-pressure: wait for quota to free up, then retry.
                busy += 1;
                tb.run_ms(5);
                pump(a, done, recvd);
            }
            other => panic!("transport send must never see {other:?}"),
        }
    }
}

/// The tentpole churn scenario: a finite quota on the sender container,
/// a randomized-convention memory-pressure window that squeezes it to
/// Soft (shedding best-effort probes) and then deeper (refusing
/// transport with Busy), plus an engine crash with supervised restart.
/// All 30 transport messages arrive exactly once, in order; only
/// best-effort work was shed; every submission got a completion.
#[test]
fn transport_exactly_once_under_pressure_and_crash() {
    let mut tb = admission_pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });

    let adm = tb.hosts[0].admission.clone().expect("admission enabled");
    // One 20 KB send fits; the soft line sits above a single in-flight
    // send until pressure squeezes it below.
    adm.set_policy("client", QuotaPolicy::with_mem(25_000, 30_000));

    let stats = tb.stats_module(StatsConfig::default());

    let sup = tb.supervise_app(
        0,
        "client",
        SupervisorConfig {
            checkpoint_interval: Nanos::from_millis(1),
            ..SupervisorConfig::default()
        },
    );

    // Crash in a quiet window; soft squeeze at 90 ms (effective soft
    // 17.5 KB < one in-flight send -> Soft while sending), deep squeeze
    // at 130 ms (effective hard 12 KB < one send -> Busy), heal at
    // 170 ms. The `c0` positional name resolves to "client" (the only
    // registered container on host 0) — the randomized-plan convention.
    let plan = FaultPlan::new()
        .at(
            Nanos::from_millis(40),
            FaultEvent::EngineCrash { host: 0, engine: 0 },
        )
        .at(
            Nanos::from_millis(90),
            FaultEvent::MemoryPressure {
                host: 0,
                container: "c0".to_string(),
                fraction: 0.3,
            },
        )
        .at(
            Nanos::from_millis(130),
            FaultEvent::MemoryPressure {
                host: 0,
                container: "client".to_string(),
                fraction: 0.6,
            },
        )
        .at(
            Nanos::from_millis(170),
            FaultEvent::ReleasePressure {
                host: 0,
                container: "client".to_string(),
            },
        );
    tb.install_fault_plan(&plan);

    let mut done: HashMap<u64, OpStatus> = HashMap::new();
    let mut recvd_a: Vec<(u32, u64)> = Vec::new();
    let mut submitted: Vec<u64> = Vec::new();
    let mut be_phase1: Vec<u64> = Vec::new();
    let mut be_soft: Vec<u64> = Vec::new();
    let mut busy_total = 0;

    // Phase 1 (no pressure): 10 transport sends, each paired with a
    // best-effort probe submitted while the send is in flight — usage
    // 20 KB stays under the 25 KB soft line, so nothing sheds.
    for _ in 0..10 {
        busy_total += send_transport_retrying(&mut tb, &mut a, conn, &mut done, &mut recvd_a);
        let be = a.submit_with_class(
            &mut tb.sim,
            PonyCommand::Send { conn, stream: 1, len: 512 },
            QosClass::BestEffort,
        );
        be_phase1.push(be);
    }
    submitted.extend(be_phase1.iter());

    // Quiet window for the crash, then let the supervisor restart the
    // engine from its checkpoint (blackout ~25 ms).
    while tb.sim.now() < Nanos::from_millis(85) {
        tb.run_ms(5);
        pump(&mut a, &mut done, &mut recvd_a);
    }
    assert_eq!(sup.report().crash_restarts, 1, "engine was restarted");

    // Phase 2 (Soft): the transport send is admitted (20 KB <= 21 KB
    // effective hard) but holds usage above the squeezed soft line, so
    // the best-effort probe submitted behind it in the same poll batch
    // is shed.
    while tb.sim.now() < Nanos::from_millis(95) {
        tb.run_ms(1);
        pump(&mut a, &mut done, &mut recvd_a);
    }
    for _ in 0..5 {
        let t = a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: MSG });
        let be = a.submit_with_class(
            &mut tb.sim,
            PonyCommand::Send { conn, stream: 1, len: 512 },
            QosClass::BestEffort,
        );
        be_soft.push(be);
        let mut waited = 0;
        while !done.contains_key(&t) && waited < 600 {
            tb.run_ms(1);
            pump(&mut a, &mut done, &mut recvd_a);
            waited += 1;
        }
        assert_eq!(done.get(&t), Some(&OpStatus::Ok), "soft pressure never blocks transport");
    }
    submitted.extend(be_soft.iter());

    // Phase 3 (deep squeeze): transport sends are refused with Busy
    // until the pressure releases at 170 ms, then retried to success.
    while tb.sim.now() < Nanos::from_millis(135) {
        tb.run_ms(1);
        pump(&mut a, &mut done, &mut recvd_a);
    }
    for _ in 0..5 {
        busy_total += send_transport_retrying(&mut tb, &mut a, conn, &mut done, &mut recvd_a);
    }

    // Phase 4 (healed): the rest of the traffic flows cleanly.
    for _ in 0..10 {
        busy_total += send_transport_retrying(&mut tb, &mut a, conn, &mut done, &mut recvd_a);
    }

    // Final drain.
    while tb.sim.now() < Nanos::from_millis(400) {
        tb.run_ms(10);
        pump(&mut a, &mut done, &mut recvd_a);
    }

    // Transport exactly-once, in order, despite crash + pressure.
    let mut got = Vec::new();
    for c in b.take_completions() {
        if let PonyCompletion::RecvMsg { stream: 0, msg, .. } = c {
            got.push(msg);
        }
    }
    assert_eq!(got, (0..30).collect::<Vec<u64>>(), "stream 0 exactly once, in order");

    // Deep pressure produced real back-pressure, and it healed.
    assert!(busy_total >= 1, "deep squeeze must refuse at least one transport send");

    // Zero silent drops: every best-effort probe has a completion.
    for op in &submitted {
        assert!(done.contains_key(op), "op {op} must complete (Ok or Shed), never vanish");
    }
    // Phase-2 probes shed; phase-1 probes succeeded.
    for op in &be_soft {
        assert_eq!(done.get(op), Some(&OpStatus::Shed), "soft pressure sheds best-effort");
    }
    for op in &be_phase1 {
        assert_eq!(done.get(op), Some(&OpStatus::Ok), "no pressure, no shedding");
    }

    // Every charge was matched by a release: usage drains to zero and
    // the accountant saw no unmatched releases.
    assert_eq!(adm.usage("client"), 0, "all send charges released");
    assert_eq!(adm.accounting_errors(), 0);
    assert_eq!(adm.pressure("client"), PressureState::Ok);

    // Telemetry attribution: sheds and denials land under the host's
    // isolation scope, and the pressure transitions were logged.
    let final_poll = |stats: &StatsModule, tb: &mut Testbed| {
        stats.poll_once(&mut tb.sim);
        tb.run_ms(1);
        stats.poll_once(&mut tb.sim);
    };
    final_poll(&stats, &mut tb);
    let snap = stats.snapshot(tb.sim.now());
    assert_eq!(snap.counter("isolation.h0.client.sheds"), Some(5));
    assert!(snap.counter("isolation.h0.client.denials").unwrap_or(0) >= 1);
    assert!(snap.counter("isolation.h0.pressure_transitions").unwrap_or(0) >= 2);
    assert_eq!(snap.counter("isolation.h0.accounting_errors").unwrap_or(0), 0);
    assert_eq!(snap.gauge("isolation.h0.client.pressure"), Some(0));
    let (transitions, _) = adm.transitions_since(0);
    assert!(
        transitions.iter().any(|t| t.to == PressureState::Soft),
        "soft transition logged: {transitions:?}"
    );
}

/// Quotas are enforced-but-invisible for unconstrained containers: a
/// testbed with admission enabled but no policies set behaves exactly
/// like one without admission, even under a randomized fault plan that
/// includes memory-pressure events (unlimited quotas are immune to
/// squeezes by construction).
#[test]
fn unconstrained_admission_is_transparent_under_randomized_pressure() {
    let run = |admission: bool| -> Vec<u64> {
        let mut tb = Testbed::new(TestbedConfig {
            admission,
            ..TestbedConfig::default()
        });
        let mut a = tb.pony_app(0, "src", |_| {});
        let mut b = tb.pony_app(1, "sink", |_| {});
        let conn = tb.connect(0, "src", 1, "sink");
        b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 64 });
        let plan = FaultPlan::randomized(99, Nanos::from_millis(80), 2, 1, 6);
        tb.install_fault_plan(&plan);
        for _ in 0..20 {
            a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 9_000 });
            tb.run_ms(2);
        }
        while tb.sim.now() < Nanos::from_millis(1_500) {
            tb.run_ms(25);
        }
        let mut got: Vec<u64> = b
            .take_completions()
            .into_iter()
            .filter_map(|c| match c {
                PonyCompletion::RecvMsg { msg, .. } => Some(msg),
                _ => None,
            })
            .collect();
        got.sort_unstable();
        got
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with, (0..20).collect::<Vec<u64>>(), "exactly once with admission");
    assert_eq!(with, without, "unconstrained admission changes nothing");
}

/// The quota module drives runtime policy changes over the testbed:
/// shrinking a live container's hard limit turns new sends into Busy,
/// restoring it lets them through again.
#[test]
fn runtime_quota_change_applies_immediately() {
    let mut tb = admission_pair();
    let mut a = tb.pony_app(0, "app", |_| {});
    let mut b = tb.pony_app(1, "peer", |_| {});
    let conn = tb.connect(0, "app", 1, "peer");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 32 });

    let quota = tb.quota_module(0);
    assert!(quota.table().contains("app"), "table lists the container:\n{}", quota.table());

    // Clamp the hard limit below one message.
    quota
        .admission()
        .set_policy("app", QuotaPolicy::with_mem(4_000, 8_000));
    let op = a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: MSG });
    tb.run_ms(5);
    let mut done = HashMap::new();
    let mut recvd = Vec::new();
    pump(&mut a, &mut done, &mut recvd);
    assert_eq!(done.get(&op), Some(&OpStatus::Busy), "over-quota send refused");

    // Raise it back; the retry goes through.
    quota.admission().set_policy("app", QuotaPolicy::UNLIMITED);
    let op2 = a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: MSG });
    while !done.contains_key(&op2) && tb.sim.now() < Nanos::from_millis(200) {
        tb.run_ms(2);
        pump(&mut a, &mut done, &mut recvd);
    }
    assert_eq!(done.get(&op2), Some(&OpStatus::Ok), "restored quota admits the send");
    assert_eq!(quota.admission().usage("app"), 0);
}
