//! The telemetry subsystem end to end: a [`StatsModule`] polling a
//! live rack must expose per-engine op counters, per-session SPSC
//! queue-depth gauges, fabric per-directed-link traffic and
//! drop-reason counters, and restart/upgrade blackout histograms — and
//! its machine-level counters must stay *exact* under churn: an engine
//! crash+restart and a live upgrade both reset the engine's own
//! counters, and the module's reset-aware deltas must neither
//! double-count nor lose quiesced operations.

use std::collections::HashMap;

use snap_repro::core::module::{ControlCx, Module};
use snap_repro::core::supervisor::SupervisorConfig;
use snap_repro::core::upgrade::UpgradeOrchestrator;
use snap_repro::core::EngineId;
use snap_repro::pony::client::{PonyCommand, PonyCompletion};
use snap_repro::sim::fault::{FaultEvent, FaultPlan};
use snap_repro::sim::Nanos;
use snap_repro::telemetry::StatsConfig;
use snap_repro::testbed::Testbed;

fn recv_msgs(client: &mut snap_repro::pony::PonyClient, out: &mut Vec<u64>) {
    for c in client.take_completions() {
        if let PonyCompletion::RecvMsg { msg, .. } = c {
            out.push(msg);
        }
    }
}

fn fast_stats() -> StatsConfig {
    StatsConfig {
        poll_period: Nanos::from_micros(500),
    }
}

/// The acceptance scenario: snapshot a running rack and find engine op
/// counters, queue-depth gauges, and per-link fabric counters — plus
/// the module's RPC surface returning the same data as a table.
#[test]
fn rack_snapshot_exposes_engine_queue_and_fabric_metrics() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let _b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    let stats = tb.stats_module(fast_stats());
    stats.start(&mut tb.sim);

    for _ in 0..20 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 4096 });
        tb.run_ms(1);
    }
    tb.run_ms(20);
    stats.stop();

    let snap = stats.snapshot(tb.sim.now());
    assert_eq!(
        snap.counter("engine.h0.client.commands"),
        Some(20),
        "every submitted command counted exactly once"
    );
    assert!(snap.counter("engine.h0.client.tx_packets").unwrap_or(0) > 0);
    assert!(snap.counter("engine.h1.server.rx_packets").unwrap_or(0) > 0);
    assert!(snap.counter("engine.h1.server.msgs_delivered").unwrap_or(0) > 0);
    assert!(
        snap.names_under("shm.h0.client.").any(|n| n.ends_with(".cmd_depth")),
        "per-session queue-depth gauge published"
    );
    assert!(snap.counter("fabric.delivered").unwrap_or(0) > 0);
    assert!(
        snap.counter("fabric.link.0->1.bytes").unwrap_or(0) > 0,
        "directed link traffic counted"
    );
    assert!(snap.counter("fabric.link.1->0.delivered").unwrap_or(0) > 0, "acks flow back");
    assert!(snap.counter("stats.polls").unwrap_or(0) > 10);

    // The same data over the control-plane RPC surface.
    let groups = HashMap::new();
    let mut stats_rpc = stats.clone();
    let mut cx = ControlCx {
        sim: &mut tb.sim,
        groups: &groups,
        regions: &tb.hosts[0].regions,
        memory: &tb.hosts[0].memory,
        cpu: &tb.hosts[0].cpu,
        app: "ops",
    };
    let table = String::from_utf8(
        stats_rpc.handle("table", &[], &mut cx).expect("table RPC"),
    )
    .expect("utf8");
    assert!(table.contains("fabric.delivered"), "{table}");
    let json = String::from_utf8(
        stats_rpc.handle("snapshot", &[], &mut cx).expect("snapshot RPC"),
    )
    .expect("utf8");
    assert!(json.contains("\"engine.h0.client.commands\": 20"), "{json}");
}

/// Churn case 1: a supervised engine crashes and restarts (its own
/// counters reset to zero). The machine-level counter must equal the
/// true total — counted once, not twice, not partially — and the
/// restart must surface as a crash counter plus a blackout histogram.
#[test]
fn crash_restart_never_double_counts_and_records_blackout() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    let engine_id = tb.hosts[0].module.engine_for("client").expect("engine");
    let sup = tb.supervise_app(
        0,
        "client",
        SupervisorConfig {
            checkpoint_interval: Nanos::from_millis(1),
            ..SupervisorConfig::default()
        },
    );
    let stats = tb.stats_module(fast_stats());
    stats.watch_supervisor(sup.clone(), &[(engine_id, "h0.client".to_string())]);
    stats.start(&mut tb.sim);

    let mut got = Vec::new();
    // Phase A: quiesces before the crash, so the pre-crash counters are
    // fully sampled.
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 2048 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    tb.hosts[0].group.kill_engine(engine_id);
    // Let the supervisor detect, restart, and the engine resume.
    while tb.sim.now() < Nanos::from_millis(100) {
        tb.run_ms(5);
    }
    // Phase B: after the restart the engine's counters restart at zero.
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 2048 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    while tb.sim.now() < Nanos::from_millis(400) {
        tb.run_ms(10);
        recv_msgs(&mut b, &mut got);
    }
    stats.stop();

    assert_eq!(got, (0..20).collect::<Vec<u64>>(), "exactly-once across the crash");
    let snap = stats.snapshot(tb.sim.now());
    assert_eq!(
        snap.counter("engine.h0.client.commands"),
        Some(20),
        "reset-aware deltas: 10 before the crash + 10 after, never double-counted"
    );
    assert_eq!(snap.counter("engine.h0.client.restarts.crash"), Some(1));
    let blackout = snap
        .histogram("engine.h0.client.blackout")
        .expect("blackout histogram");
    assert_eq!(blackout.count(), 1, "one completed restart");
    assert!(
        blackout.max() >= Nanos::from_millis(1).as_nanos(),
        "blackout covers detection + restart cost: {}ns",
        blackout.max()
    );
}

/// Churn case 2: a live upgrade replaces the engine (counters reset
/// again) and the upgrade report must be folded in exactly once even
/// though the module keeps polling long after it lands.
#[test]
fn live_upgrade_never_double_counts_and_folds_report_once() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    let stats = tb.stats_module(fast_stats());
    stats.start(&mut tb.sim);

    let mut got = Vec::new();
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 2048 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }

    let id = tb.hosts[0].module.engine_for("client").expect("engine");
    let factory = tb.hosts[0].module.upgrade_factory("client").expect("factory");
    let mut orch = UpgradeOrchestrator::new();
    orch.add_engine_fallible(tb.hosts[0].group.clone(), id, 2, factory);
    let report = orch.start(&mut tb.sim);
    stats.watch_upgrade(report.clone());

    while tb.sim.now() < Nanos::from_millis(100) {
        tb.run_ms(5);
    }
    assert!(report.borrow().is_some(), "upgrade completed");
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 2048 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    while tb.sim.now() < Nanos::from_millis(400) {
        tb.run_ms(10);
        recv_msgs(&mut b, &mut got);
    }
    stats.stop();

    assert_eq!(got, (0..20).collect::<Vec<u64>>(), "exactly-once across the upgrade");
    let snap = stats.snapshot(tb.sim.now());
    assert_eq!(
        snap.counter("engine.h0.client.commands"),
        Some(20),
        "upgrade reset the engine's counters; machine total unaffected"
    );
    assert_eq!(snap.counter("upgrade.engines"), Some(1), "report folded exactly once");
    let blackout = snap.histogram("upgrade.blackout").expect("blackout histogram");
    assert_eq!(blackout.count(), 1);
    assert!(blackout.max() > 0, "blackout duration recorded");
    assert_eq!(snap.counter("upgrade.rollbacks"), None, "clean upgrade");
}

/// Asymmetric (one-direction) partitions: the scripted one-way fault
/// must black-hole exactly the `from -> to` direction, and the
/// per-directed-link drop counters must attribute every partition drop
/// to that direction only.
#[test]
fn oneway_partition_drops_are_attributed_to_one_direction() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    let back = tb.connect(1, "server", 0, "client");
    let stats = tb.stats_module(fast_stats());
    stats.start(&mut tb.sim);

    let plan = FaultPlan::new()
        .at(
            Nanos::from_millis(5),
            FaultEvent::PartitionOneWay { from: 0, to: 1 },
        )
        .at(
            Nanos::from_millis(120),
            FaultEvent::HealOneWay { from: 0, to: 1 },
        );
    tb.install_fault_plan(&plan);
    tb.run_ms(10);
    assert!(tb.fabric.is_partitioned_oneway(0, 1));
    assert!(!tb.fabric.is_partitioned_oneway(1, 0));

    // Traffic into the black-holed direction (and acks for the reverse
    // direction, which also travel 0 -> 1).
    let mut got_a = Vec::new();
    let mut got_b = Vec::new();
    for _ in 0..5 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 2048 });
        b.submit(&mut tb.sim, PonyCommand::Send { conn: back, stream: 0, len: 2048 });
        tb.run_ms(4);
        recv_msgs(&mut a, &mut got_a);
        recv_msgs(&mut b, &mut got_b);
    }
    // Heal at 120ms, then let retransmissions finish.
    while tb.sim.now() < Nanos::from_millis(2_000) {
        tb.run_ms(20);
        recv_msgs(&mut a, &mut got_a);
        recv_msgs(&mut b, &mut got_b);
    }
    stats.stop();

    assert_eq!(got_b, (0..5).collect::<Vec<u64>>(), "0->1 stream recovered after heal");
    assert_eq!(got_a, (0..5).collect::<Vec<u64>>(), "1->0 stream delivered");
    let snap = stats.snapshot(tb.sim.now());
    let fwd = snap.counter("fabric.link.0->1.drops.partition").unwrap_or(0);
    let rev = snap.counter("fabric.link.1->0.drops.partition").unwrap_or(0);
    assert!(fwd > 0, "one-way partition dropped 0->1 traffic");
    assert_eq!(rev, 0, "reverse direction never dropped");
    assert!(
        snap.counter("fabric.link.1->0.delivered").unwrap_or(0) > 0,
        "reverse direction kept delivering during the partition"
    );
}

/// Engines that disappear from the watch list's reach (crashed, mid
/// upgrade) must not wedge the poll loop: `Busy`/`Unavailable` mailbox
/// posts skip the tick and sampling resumes once the engine is back.
#[test]
fn polling_survives_an_unsupervised_crash() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let _b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    let stats = tb.stats_module(fast_stats());
    stats.start(&mut tb.sim);
    for _ in 0..5 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 1024 });
        tb.run_ms(2);
    }
    // Crash with no supervisor: the engine stays dead.
    tb.hosts[0].group.kill_engine(EngineId(0));
    tb.run_ms(50);
    stats.stop();
    let snap = stats.snapshot(tb.sim.now());
    assert_eq!(snap.counter("engine.h0.client.commands"), Some(5));
    assert!(
        snap.counter("stats.polls").unwrap_or(0) > 50,
        "poll loop kept running across the dead engine"
    );
}
