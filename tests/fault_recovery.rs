//! Fault injection and recovery, end to end: a scripted [`FaultPlan`]
//! crashes engines, partitions the fabric, and corrupts packets while
//! two hosts exchange messages; engine supervision (checkpoint/restart)
//! and the transport's SACK/RTO machinery must together deliver every
//! message exactly once, in order. A negative control shows the same
//! faults are fatal without supervision, and a separate scenario drives
//! the upgrade-rollback path by crashing the successor mid-migration.

use proptest::prelude::*;

use snap_repro::core::supervisor::SupervisorConfig;
use snap_repro::core::upgrade::UpgradeOrchestrator;
use snap_repro::pony::client::{PonyCommand, PonyCompletion};
use snap_repro::pony::engine::{PonyEngine, PonyEngineConfig};
use snap_repro::pony::flow::Flow;
use snap_repro::pony::timely::TimelyConfig;
use snap_repro::sim::fault::{FaultEvent, FaultPlan};
use snap_repro::sim::Nanos;
use snap_repro::testbed::Testbed;

fn recv_msgs(client: &mut snap_repro::pony::PonyClient, out: &mut Vec<u64>) {
    for c in client.take_completions() {
        if let PonyCompletion::RecvMsg { msg, .. } = c {
            out.push(msg);
        }
    }
}

/// The tentpole scenario: 2% payload corruption throughout, the
/// sender engine crashes mid-run, and a 500 ms partition cuts the rack
/// in half — yet with supervision every message arrives exactly once,
/// in order.
#[test]
fn echo_survives_crash_partition_and_corruption() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });

    // Tight checkpoints so the crash restores near-current state; the
    // crash lands during a quiet window, so recovery is lossless.
    let sup = tb.supervise_app(
        0,
        "client",
        SupervisorConfig {
            checkpoint_interval: Nanos::from_millis(1),
            ..SupervisorConfig::default()
        },
    );

    let plan = FaultPlan::new()
        .at(Nanos(1), FaultEvent::CorruptRate { prob: 0.02 })
        .at(
            Nanos::from_millis(30),
            FaultEvent::EngineCrash { host: 0, engine: 0 },
        )
        .at(
            Nanos::from_millis(150),
            FaultEvent::Partition { a: 0, b: 1 },
        )
        .at(Nanos::from_millis(650), FaultEvent::Heal { a: 0, b: 1 });
    tb.install_fault_plan(&plan);

    let mut got = Vec::new();
    // Phase A: before the crash (quiesces by t=30ms).
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 20_000 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    // Phase B: after the restart (restart blackout is ~25 ms).
    while tb.sim.now() < Nanos::from_millis(80) {
        tb.run_ms(5);
    }
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 20_000 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    // Phase C: submitted into the partition; retransmission carries
    // them across once the link heals.
    while tb.sim.now() < Nanos::from_millis(200) {
        tb.run_ms(5);
    }
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 20_000 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    // Let the heal + retransmissions finish.
    while tb.sim.now() < Nanos::from_millis(3_000) {
        tb.run_ms(50);
        recv_msgs(&mut b, &mut got);
    }

    assert_eq!(
        got,
        (0..30).collect::<Vec<u64>>(),
        "every message exactly once, in order"
    );
    let report = sup.report();
    assert_eq!(report.crash_restarts, 1, "supervisor restarted the crashed engine");
    assert!(report.checkpoints > 10, "periodic checkpoints accumulated");

    // Fault accounting: the server-side host saw both corruption drops
    // (counted at the switch) and CRC rejections (counted at the NIC),
    // and the partition dropped packets in at least one direction.
    let dr1 = tb.fabric.drop_reasons(1);
    assert!(dr1.corruption > 0, "corruption events recorded: {dr1:?}");
    assert!(dr1.crc_bad > 0, "corrupted packets rejected by CRC: {dr1:?}");
    let dr0 = tb.fabric.drop_reasons(0);
    assert!(
        dr0.partition + dr1.partition > 0,
        "partition dropped packets: {dr0:?} {dr1:?}"
    );
}

/// Burst delivery keeps per-packet fault semantics: with the batched
/// datapath (default 16-packet polling and fabric packet trains), a
/// corruption rate active for the whole run and a partition that cuts
/// the rack while trains are in flight must still yield exactly-once,
/// in-order delivery — faults hit individual packets inside a train,
/// never the train as a unit, and SACK/RTO recover the holes.
#[test]
fn burst_trains_preserve_exactly_once_under_faults() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "src", |_| {});
    let mut b = tb.pony_app(1, "sink", |_| {});
    let conn = tb.connect(0, "src", 1, "sink");

    let plan = FaultPlan::new()
        .at(Nanos(1), FaultEvent::CorruptRate { prob: 0.05 })
        .at(Nanos::from_millis(5), FaultEvent::Partition { a: 0, b: 1 })
        .at(Nanos::from_millis(20), FaultEvent::Heal { a: 0, b: 1 });
    tb.install_fault_plan(&plan);

    // Bursts of back-to-back sends keep the tx queue deep enough that
    // multi-packet trains form; some land inside the partition window
    // and are retransmitted across the heal.
    const MSGS: u64 = 200;
    let mut submitted = 0u64;
    let mut got = Vec::new();
    while submitted < MSGS {
        for _ in 0..8 {
            a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 4096 });
            submitted += 1;
        }
        tb.run_us(500);
        recv_msgs(&mut b, &mut got);
    }
    let deadline = Nanos::from_millis(2_000);
    while (got.len() as u64) < MSGS && tb.sim.now() < deadline {
        tb.run_ms(10);
        recv_msgs(&mut b, &mut got);
    }

    assert_eq!(
        got,
        (0..MSGS).collect::<Vec<u64>>(),
        "burst delivery must be exactly once, in order"
    );
    // The faults really fired inside trains: corrupted packets were
    // rejected by the receiving NIC's CRC check and the partition
    // dropped packets at the switch.
    let dr = tb.fabric.drop_reasons(1);
    assert!(dr.corruption > 0, "corruption hit packets in-flight: {dr:?}");
    assert!(dr.crc_bad > 0, "CRC rejections recorded: {dr:?}");
    let dr0 = tb.fabric.drop_reasons(0);
    assert!(
        dr0.partition + dr.partition > 0,
        "partition dropped packets: {dr0:?} {dr:?}"
    );
}

/// Negative control: the identical crash without a supervisor is fatal
/// — the sender engine never comes back and later messages are lost.
#[test]
fn without_supervision_the_same_crash_is_fatal() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });

    let plan = FaultPlan::new().at(
        Nanos::from_millis(30),
        FaultEvent::EngineCrash { host: 0, engine: 0 },
    );
    tb.install_fault_plan(&plan);

    let mut got = Vec::new();
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 20_000 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    while tb.sim.now() < Nanos::from_millis(80) {
        tb.run_ms(5);
    }
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 20_000 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    while tb.sim.now() < Nanos::from_millis(2_000) {
        tb.run_ms(50);
        recv_msgs(&mut b, &mut got);
    }
    assert!(
        got.len() < 20,
        "without supervision the post-crash messages must be lost, got {}",
        got.len()
    );
}

/// A successor crash injected mid-blackout makes the upgrade roll back
/// to the still-live predecessor; the extra outage is bounded (well
/// under the paper's 250 ms envelope) and traffic continues on the
/// original engine.
#[test]
fn successor_crash_mid_upgrade_rolls_back_within_blackout_budget() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let mut b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });

    let mut got = Vec::new();
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 700 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }

    // Upgrade the server engine; crash the successor 1 ms into the
    // blackout (no brownout: connections = 0, so blackout starts now).
    let server_engine = tb.hosts[1].module.engine_for("server").unwrap();
    let factory = tb.hosts[1].module.upgrade_factory("server").unwrap();
    let mut orch = UpgradeOrchestrator::new();
    orch.add_engine_fallible(tb.hosts[1].group.clone(), server_engine, 0, factory);
    let crash_at = tb.sim.now() + Nanos::from_millis(1);
    let plan = FaultPlan::new().at(crash_at, FaultEvent::EngineCrash { host: 1, engine: 0 });
    tb.install_fault_plan(&plan);
    let result = orch.start(&mut tb.sim);

    tb.run_ms(300);
    let report = result.borrow().clone().expect("upgrade finished");
    assert_eq!(report.rollbacks(), 1, "migration rolled back");
    assert!(report.engines[0].rolled_back);
    assert!(
        report.engines[0].blackout < Nanos::from_millis(250),
        "rollback blackout {} within the SLO envelope",
        report.engines[0].blackout
    );

    // The predecessor keeps serving: the same connection and stream
    // continue, exactly once and in order.
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 700 });
        tb.run_ms(2);
        recv_msgs(&mut b, &mut got);
    }
    while tb.sim.now() < Nanos::from_millis(2_000) {
        tb.run_ms(50);
        recv_msgs(&mut b, &mut got);
    }
    assert_eq!(
        got,
        (0..20).collect::<Vec<u64>>(),
        "stream survived the rolled-back upgrade intact"
    );
}

// Checkpoint robustness properties: deserialization of damaged
// snapshots must fail with a typed error — the supervisor's fresh-start
// fallback and the upgrade rollback both depend on it never panicking.
proptest! {
    /// Gray faults end to end: a lossy-but-alive link plus a PFC pause
    /// storm, with hedged retries enabled on the sender and a
    /// quarantine rebuild of the sender engine mid-run. Every message
    /// must still arrive exactly once, in order — hedge duplicates are
    /// absorbed by the engine's per-session op watermark, and the
    /// watermark itself survives the checkpoint/restore cycle.
    #[test]
    fn gray_faults_with_hedging_and_quarantine_preserve_exactly_once(
        loss_pm in 20u64..250,
        storm_at_us in 500u64..3_000,
        storm_us in 200u64..2_000,
    ) {
        use snap_repro::pony::client::HedgeConfig;

        let loss = loss_pm as f64 / 1000.0;

        let mut tb = Testbed::pair();
        let mut a = tb.pony_app(0, "src", |_| {});
        a.enable_hedging(HedgeConfig::default());
        let mut b = tb.pony_app(1, "sink", |_| {});
        let conn = tb.connect(0, "src", 1, "sink");
        let sup = tb.supervise_app(
            0,
            "src",
            SupervisorConfig {
                checkpoint_interval: Nanos::from_millis(1),
                restart_cost: Nanos::from_micros(200),
                ..SupervisorConfig::default()
            },
        );
        let engine = tb.hosts[0].module.engine_for("src").expect("app exists");

        let plan = FaultPlan::new()
            .at(Nanos(1), FaultEvent::LinkLossy { from: 0, to: 1, prob: loss })
            .at(
                Nanos::from_micros(storm_at_us),
                FaultEvent::PauseStorm {
                    host: 1,
                    duration: Nanos::from_micros(storm_us),
                },
            );
        tb.install_fault_plan(&plan);

        const MSGS: u64 = 40;
        let mut got = Vec::new();
        let send_phase = |tb: &mut Testbed,
                              a: &mut snap_repro::pony::PonyClient,
                              b: &mut snap_repro::pony::PonyClient,
                              got: &mut Vec<u64>,
                              n: u64| {
            for _ in 0..n {
                a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 1500 });
                tb.run_us(150);
                let now = tb.sim.now();
                a.take_completions_at(now);
                recv_msgs(b, got);
            }
        };
        // Phase 1 under faults, then drain to a quiet window so the
        // checkpoint the quarantine rebuilds from is complete.
        send_phase(&mut tb, &mut a, &mut b, &mut got, MSGS / 2);
        let deadline = tb.sim.now() + Nanos::from_millis(200);
        while (got.len() as u64) < MSGS / 2 && tb.sim.now() < deadline {
            tb.run_ms(2);
            let now = tb.sim.now();
            a.take_completions_at(now);
            recv_msgs(&mut b, &mut got);
        }
        tb.run_ms(3); // a checkpoint pass captures the quiesced state

        // Proactive quarantine rebuild (what the health sweep does on a
        // Degraded verdict), then phase 2 under the same lossy link.
        prop_assert!(sup.quarantine(&mut tb.sim, &tb.hosts[0].group, engine));
        tb.run_ms(2);
        send_phase(&mut tb, &mut a, &mut b, &mut got, MSGS / 2);
        let deadline = tb.sim.now() + Nanos::from_millis(500);
        while (got.len() as u64) < MSGS && tb.sim.now() < deadline {
            tb.run_ms(2);
            let now = tb.sim.now();
            a.take_completions_at(now);
            recv_msgs(&mut b, &mut got);
        }

        prop_assert_eq!(
            got,
            (0..MSGS).collect::<Vec<u64>>(),
            "exactly once, in order, despite loss {} + storm + quarantine",
            loss
        );
        prop_assert_eq!(sup.report().quarantine_restarts, 1);
    }

    /// Truncating or bit-flipping a serialized flow snapshot must
    /// produce `Err` (or a benign `Ok`), never a panic.
    #[test]
    fn corrupt_flow_checkpoints_never_panic(
        msgs in 1usize..5,
        cut in 0usize..400,
        flip_byte in 0usize..400,
        flip_bit in 0u8..8,
    ) {
        let mut f = Flow::new(7, 5, TimelyConfig::default());
        for i in 0..msgs {
            f.enqueue(
                snap_repro::pony::wire::OpFrame::MsgChunk {
                    conn: 1,
                    stream: 0,
                    msg: i as u64,
                    offset: 0,
                    total: 64,
                    len: 64,
                },
                Nanos::ZERO,
            );
        }
        let _ = f.produce(Nanos::ZERO);
        let snapshot = f.serialize();

        // Truncation at every possible point is an error or a clean parse.
        let cut = cut.min(snapshot.len());
        let _ = Flow::deserialize(&snapshot[..cut], TimelyConfig::default(), Nanos(1));

        // A single bit flip anywhere must also be handled.
        let mut flipped = snapshot.clone();
        let idx = flip_byte % flipped.len();
        flipped[idx] ^= 1 << flip_bit;
        let _ = Flow::deserialize(&flipped, TimelyConfig::default(), Nanos(1));
    }

    /// The same property for a full engine checkpoint through
    /// [`PonyEngine::restore`]: corrupt input yields `Err`, not a panic.
    #[test]
    fn corrupt_engine_checkpoints_never_panic(
        cut in 0usize..600,
        flip_byte in 0usize..600,
        flip_bit in 0u8..8,
    ) {
        use snap_repro::core::engine::Engine;
        let fabric = snap_repro::nic::fabric::FabricHandle::new(
            snap_repro::nic::fabric::FabricConfig::default(),
        );
        let host = fabric.add_host(snap_repro::nic::nic::NicConfig::default());
        let regions = snap_repro::shm::region::RegionRegistry::new(
            snap_repro::shm::account::MemoryAccountant::new(),
        );
        let sessions: snap_repro::pony::engine::SessionTable =
            std::rc::Rc::new(std::cell::RefCell::new(std::collections::HashMap::new()));
        let mk_cfg = || PonyEngineConfig::new("prop", host, 99);
        let mut engine =
            PonyEngine::new(mk_cfg(), fabric.clone(), regions.clone(), sessions.clone());
        engine.add_session(3);
        let snapshot = engine.serialize_state();

        let cut = cut.min(snapshot.len());
        let truncated = PonyEngine::restore(
            &snapshot[..cut],
            mk_cfg(),
            fabric.clone(),
            regions.clone(),
            sessions.clone(),
            Nanos(1),
        );
        if cut < snapshot.len() {
            prop_assert!(truncated.is_err(), "truncated checkpoint must not parse");
        }

        let mut flipped = snapshot.clone();
        let idx = flip_byte % flipped.len();
        flipped[idx] ^= 1 << flip_bit;
        let _ = PonyEngine::restore(
            &flipped,
            mk_cfg(),
            fabric,
            regions,
            sessions,
            Nanos(1),
        );
    }
}

/// Negative control for gray-failure detection: a healthy rack under
/// full probing (links and a supervised workload engine) and a live
/// workload must produce zero quarantines — the detector's warmup,
/// thresholds, and latching may never fire on nominal behavior.
#[test]
fn healthy_run_produces_zero_quarantines() {
    use snap_repro::health_rig::HealthRigConfig;

    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "client", |_| {});
    let _b = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    let sup = tb.supervise_app(0, "client", SupervisorConfig::default());
    let rig = tb.health_rig(HealthRigConfig::default());
    tb.health_watch_app(&rig, 0, "client", &sup);
    rig.start(&mut tb.sim);

    for _ in 0..300 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 1000 });
        tb.run_us(100);
        a.poll();
        a.take_completions();
    }
    rig.stop();
    sup.stop();
    tb.run_ms(2);

    assert_eq!(rig.quarantines(), 0, "no false positives on a healthy rack");
    assert_eq!(sup.report().restarts(), 0);
}

/// Shared-engine supervision (§3.1's pre-loaded shared engines): when a
/// *shared* engine crashes, the restart must restore exactly the
/// sessions that engine owned — both via its own checkpoint and via the
/// module's control-plane ownership record on the corrupt-checkpoint
/// fallback path — and must never steal sessions belonging to other
/// engines on the host.
#[test]
fn shared_engine_restart_restores_only_its_own_sessions() {
    let mut tb = Testbed::pair();
    // A shared pool with two attached apps, plus an unrelated dedicated
    // engine on the same host.
    let pool_id = tb.hosts[0].module.create_shared_engine("pool", |_| {});
    tb.hosts[0]
        .module
        .attach_app_to_shared("x", "pool")
        .expect("pool exists");
    tb.hosts[0]
        .module
        .attach_app_to_shared("y", "pool")
        .expect("pool exists");
    let mut x = tb.hosts[0].module.open_session("x", 256).expect("session");
    let _y = tb.hosts[0].module.open_session("y", 256).expect("session");
    let _solo = tb.pony_app(0, "solo", |_| {});
    let solo_id = tb.hosts[0].module.engine_for("solo").expect("engine");
    assert_ne!(pool_id, solo_id);
    let mut server = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "x", 1, "server");

    let mut pool_sessions = tb.hosts[0].module.sessions_for("pool");
    pool_sessions.sort_unstable();
    assert_eq!(pool_sessions.len(), 2, "both attached apps own sessions");
    let solo_sessions = tb.hosts[0].module.sessions_for("solo");
    assert_eq!(solo_sessions.len(), 1);

    let sup = tb.supervise_app(
        0,
        "pool",
        SupervisorConfig {
            checkpoint_interval: Nanos::from_millis(1),
            ..SupervisorConfig::default()
        },
    );
    tb.run_ms(5);
    tb.hosts[0].group.kill_engine(pool_id);
    tb.run_ms(60);
    assert_eq!(sup.report().crash_restarts, 1, "shared engine restarted");

    // Healthy-checkpoint path: the restored engine owns exactly the
    // pool's sessions.
    let mut owned = tb.hosts[0].group.with_engine(pool_id, |e| {
        e.as_any()
            .downcast_mut::<PonyEngine>()
            .map(|p| p.owned_sessions().to_vec())
            .unwrap_or_default()
    });
    owned.sort_unstable();
    assert_eq!(owned, pool_sessions, "restored exactly the pool's sessions");
    assert!(
        !owned.contains(&solo_sessions[0]),
        "the dedicated engine's session was not stolen"
    );

    // The pool still carries traffic after the restart.
    x.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 512 });
    tb.run_ms(30);
    assert!(
        server
            .take_completions()
            .iter()
            .any(|c| matches!(c, PonyCompletion::RecvMsg { .. })),
        "shared engine delivers after restart"
    );

    // Corrupt-checkpoint fallback path: a fresh engine is rebuilt from
    // the module's ownership record — again, only the pool's sessions.
    let factory = tb.hosts[0]
        .module
        .restart_factory("pool")
        .expect("pool registered");
    let mut rebuilt = factory(vec![0xFF; 16], &mut tb.sim);
    let mut fallback_owned = rebuilt
        .as_any()
        .downcast_mut::<PonyEngine>()
        .expect("pony engine")
        .owned_sessions()
        .to_vec();
    fallback_owned.sort_unstable();
    assert_eq!(
        fallback_owned, pool_sessions,
        "fallback restores only the crashed engine's host sessions"
    );
}
