//! Transparent upgrades under load (§4, §5.5): engines migrate one at
//! a time; applications stay connected; streams and one-sided state
//! survive; blackout stays within the paper's envelope.

use snap_repro::core::upgrade::UpgradeOrchestrator;
use snap_repro::pony::client::{OpStatus, PonyCommand, PonyCompletion};
use snap_repro::shm::region::AccessMode;
use snap_repro::sim::Nanos;
use snap_repro::testbed::Testbed;

#[test]
fn upgrade_preserves_messaging_and_ordering() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });

    let mut received = Vec::new();
    let drain = |tb: &mut Testbed, b: &mut snap_repro::pony::PonyClient, out: &mut Vec<u64>| {
        let _ = tb;
        for c in b.take_completions() {
            if let PonyCompletion::RecvMsg { msg, .. } = c {
                out.push(msg);
            }
        }
    };

    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 700 });
        tb.run_us(200);
        drain(&mut tb, &mut b, &mut received);
    }

    // Upgrade BOTH engines, sequentially (the per-engine incremental
    // migration of §4).
    let mut orch = UpgradeOrchestrator::new();
    for (host, app) in [(0usize, "a"), (1usize, "b")] {
        let id = tb.hosts[host].module.engine_for(app).unwrap();
        let factory = tb.hosts[host].module.upgrade_factory(app).unwrap();
        orch.add_engine_fallible(tb.hosts[host].group.clone(), id, 3, factory);
    }
    let report = orch.start(&mut tb.sim);

    // Traffic continues during the upgrade.
    for _ in 0..10 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 700 });
        tb.run_ms(10);
        drain(&mut tb, &mut b, &mut received);
    }
    tb.run_ms(1000);
    drain(&mut tb, &mut b, &mut received);

    let report = report.borrow().clone().expect("upgrade completed");
    assert_eq!(report.engines.len(), 2);
    for e in &report.engines {
        assert!(
            e.blackout < Nanos::from_millis(250),
            "engine {} blackout {}",
            e.engine,
            e.blackout
        );
    }
    received.sort_unstable();
    received.dedup();
    assert_eq!(received, (0..20).collect::<Vec<u64>>(), "exactly-once, in order");
}

#[test]
fn upgrade_preserves_pending_one_sided_ops() {
    let mut tb = Testbed::pair();
    let mut client = tb.pony_app(0, "client", |_| {});
    let _server = tb.pony_app(1, "server", |_| {});
    let conn = tb.connect(0, "client", 1, "server");
    let region = tb.hosts[1]
        .regions
        .register_with("server", (0u8..100).collect(), AccessMode::ReadOnly);

    // Issue reads, then immediately upgrade the CLIENT engine so the
    // pending-op table must survive serialization.
    let mut ops = Vec::new();
    for i in 0..5u64 {
        ops.push(client.submit(
            &mut tb.sim,
            PonyCommand::Read { conn, region: region.0, offset: i, len: 2 },
        ));
    }
    let id = tb.hosts[0].module.engine_for("client").unwrap();
    let factory = tb.hosts[0].module.upgrade_factory("client").unwrap();
    let mut orch = UpgradeOrchestrator::new();
    orch.add_engine_fallible(tb.hosts[0].group.clone(), id, 1, factory);
    let report = orch.start(&mut tb.sim);
    tb.run_ms(1500);
    assert!(report.borrow().is_some());

    let completions = client.take_completions();
    for op in ops {
        let ok = completions.iter().any(|c| matches!(
            c,
            PonyCompletion::OpDone { op: o, status: OpStatus::Ok, .. } if *o == op
        ));
        assert!(ok, "op {op} must complete across the upgrade");
    }
}

#[test]
fn blackout_drops_packets_but_transport_recovers() {
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    b.submit(&mut tb.sim, PonyCommand::PostRecvBuffers { conn, count: 256 });
    tb.run_ms(1);

    // Start a large transfer, then upgrade the receiver mid-flight.
    a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 3_000_000 });
    tb.run_us(300);
    let id = tb.hosts[1].module.engine_for("b").unwrap();
    let factory = tb.hosts[1].module.upgrade_factory("b").unwrap();
    let mut orch = UpgradeOrchestrator::new();
    orch.add_engine_fallible(tb.hosts[1].group.clone(), id, 2, factory);
    orch.start(&mut tb.sim);

    tb.run_ms(3000);
    // NIC filter detach during blackout dropped packets...
    let drops = tb
        .fabric
        .with_nic(tb.hosts[1].id, |nic| nic.stats().rx_filter_drops);
    assert!(drops > 0, "blackout should drop packets at the detached filter");
    // ...but the transport recovered them all.
    let delivered: Vec<u64> = b
        .take_completions()
        .into_iter()
        .filter_map(|c| match c {
            PonyCompletion::RecvMsg { len, .. } => Some(len),
            _ => None,
        })
        .collect();
    assert_eq!(delivered, vec![3_000_000], "transfer completed despite blackout loss");
}

#[test]
fn weekly_release_cycle_two_upgrades_back_to_back() {
    // "a new Snap release gets deployed to our fleet on a weekly
    // basis" — state must survive repeated migrations.
    let mut tb = Testbed::pair();
    let mut a = tb.pony_app(0, "a", |_| {});
    let mut b = tb.pony_app(1, "b", |_| {});
    let conn = tb.connect(0, "a", 1, "b");
    let mut total = 0u64;
    for release in 0..2 {
        for _ in 0..5 {
            a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 300 });
            total += 1;
        }
        tb.run_ms(5);
        let id = tb.hosts[1].module.engine_for("b").unwrap();
        let factory = tb.hosts[1].module.upgrade_factory("b").unwrap();
        let mut orch = UpgradeOrchestrator::new();
        orch.add_engine_fallible(tb.hosts[1].group.clone(), id, 2, factory);
        let r = orch.start(&mut tb.sim);
        tb.run_ms(500);
        assert!(r.borrow().is_some(), "release {release} completed");
    }
    for _ in 0..5 {
        a.submit(&mut tb.sim, PonyCommand::Send { conn, stream: 0, len: 300 });
        total += 1;
    }
    tb.run_ms(1000);
    let msgs: Vec<u64> = b
        .take_completions()
        .into_iter()
        .filter_map(|c| match c {
            PonyCompletion::RecvMsg { msg, .. } => Some(msg),
            _ => None,
        })
        .collect();
    let mut sorted = msgs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len() as u64, total, "all messages across two releases");
}

#[test]
fn virt_engine_flow_table_survives_upgrade_under_traffic() {
    use bytes::Bytes;
    use snap_repro::core::engine::Engine as _;
    use snap_repro::core::virt::{Route, VirtAddr, VirtEngine};
    use snap_repro::nic::packet::Packet;
    use std::rc::Rc;

    // One host with a virt engine; a guest keeps sending while the
    // engine migrates; the flow table must survive so post-upgrade
    // packets still route without a slow-path miss.
    let mut tb = Testbed::pair();
    let fabric = tb.fabric.clone();
    let group = tb.hosts[0].group.clone();
    let engine = VirtEngine::new("virt", tb.hosts[0].id, 0xEE, 1, fabric.clone());
    let id = group.add_engine(Box::new(engine));
    let wake = group.wake_handle(id);
    fabric.with_nic(tb.hosts[0].id, |nic| {
        nic.set_irq_handler(Rc::new(move |sim, _q| wake(sim)));
    });

    let src = VirtAddr { tenant: 1, vip: 1 };
    let dst = VirtAddr { tenant: 1, vip: 2 };
    let guest_tx = group.with_engine(id, |e| {
        let ve = e.as_any().downcast_mut::<VirtEngine>().unwrap();
        let (tx, _rx) = ve.attach_guest(src, 128);
        ve.install_route(dst, Route { host: 1, engine_key: 0xEF });
        tx
    });
    let addressed = |len: usize| {
        let mut p = Packet::new(0, 0, Bytes::from(vec![1u8; len]));
        p.rss_hash = ((dst.tenant as u64) << 32) | dst.vip as u64;
        p
    };

    guest_tx.inject(tb.sim.now(), addressed(64));
    group.wake(&mut tb.sim, id);
    tb.run_ms(1);

    // Upgrade: factory rebuilds the engine, restores the flow table,
    // and re-attaches the guest ring (the shm-handle transfer).
    let host = tb.hosts[0].id;
    let fabric2 = fabric.clone();
    let guest_tx2 = guest_tx.clone();
    let mut orch = UpgradeOrchestrator::new();
    orch.add_engine(
        group.clone(),
        id,
        1,
        Box::new(move |state, _sim| {
            let mut v2 = VirtEngine::new("virt-v2", host, 0xEE, 1, fabric2);
            v2.restore_flows(&state);
            // Re-attach the guest with its PRESERVED rings (the shm
            // queues transferred during brownout).
            v2.attach_guest_with_rings(
                VirtAddr { tenant: 1, vip: 1 },
                guest_tx2.clone(),
                snap_repro::core::kernel_inject::KernelRing::new(128),
            );
            Box::new(v2)
        }),
    );
    let report = orch.start(&mut tb.sim);
    tb.run_ms(200);
    assert!(report.borrow().is_some(), "upgrade completed");

    // Post-upgrade traffic flows through the preserved ring and routes
    // from the restored table: encap proceeds with zero misses.
    guest_tx.inject(tb.sim.now(), addressed(64));
    group.wake(&mut tb.sim, id);
    tb.run_ms(2);
    group.with_engine(id, |e| {
        let ve = e.as_any().downcast_mut::<VirtEngine>().unwrap();
        assert_eq!(ve.name(), "virt-v2", "successor engine is live");
        assert_eq!(ve.flow_count(), 1, "flow table restored");
        assert_eq!(ve.stats().encapped, 1, "post-upgrade packet routed");
        assert_eq!(ve.stats().misses, 0, "no slow-path misses after upgrade");
    });
}
